package mem

import "testing"

// Tests for the DRAM scheduling-policy row model and the cache insertion
// policies — the two new decision-scenario arm spaces — plus the
// zero-allocation guards on their arm-switch paths.

// testDRAM builds a channel with round numbers: period 10 cycles/line
// (800 MT/s at 1 GHz), flat latency 100. Row offsets: hit -60, miss +60,
// close-page +20.
func testDRAM() *DRAM { return NewDRAM(800, 1.0, 100) }

// op is one scheduled access in an audit sequence.
type schedOp struct {
	write bool
	line  uint64
	cycle int64
	want  int64 // expected completion cycle
}

// TestDRAMScheduleAudit pins the schedule/rowLatency contract per policy:
// completion times, call-order (not issue-cycle-order) service, queued
// counting, and the row hit/miss/reorder counters. The sequences mix
// reads and writebacks because the fill queue really does interleave
// them on one channel.
func TestDRAMScheduleAudit(t *testing.T) {
	cases := []struct {
		name                          string
		policy                        SchedPolicy
		ops                           []schedOp
		queued, hits, misses, reorder int64
	}{
		{
			name:   "none/flat latency and queueing",
			policy: SchedNone,
			ops: []schedOp{
				{line: 0, cycle: 0, want: 110},   // free channel: 0+100+10
				{line: 64, cycle: 0, want: 120},  // queued: starts at 10
				{line: 0, cycle: 500, want: 610}, // idle again
			},
			queued: 1,
		},
		{
			name:   "none/write queues behind earlier read in call order",
			policy: SchedNone,
			ops: []schedOp{
				{line: 0, cycle: 100, want: 210},
				// Writeback issued at an EARLIER cycle still queues behind
				// the read: the channel services arrivals in call order.
				{write: true, line: 1, cycle: 50, want: 220},
				{line: 2, cycle: 50, want: 230},
			},
			queued: 2,
		},
		{
			name:   "fcfs-open/row hits and misses",
			policy: SchedFCFSOpen,
			ops: []schedOp{
				{line: 0, cycle: 0, want: 170},      // miss: 100+60
				{line: 1, cycle: 300, want: 350},    // same row 0: hit, 100-60
				{line: 64, cycle: 600, want: 770},   // row 1: miss
				{line: 65, cycle: 1000, want: 1050}, // row 1 again: hit
			},
			hits: 2, misses: 2,
		},
		{
			name:   "fcfs-open/writeback shares the row buffer",
			policy: SchedFCFSOpen,
			ops: []schedOp{
				{line: 0, cycle: 0, want: 170},                // miss opens row 0
				{write: true, line: 1, cycle: 300, want: 350}, // writeback hits row 0
				{line: 2, cycle: 600, want: 650},              // read hits the row the writeback kept open
			},
			hits: 2, misses: 1,
		},
		{
			name:   "fcfs-close/flat activate, no precharge stalls",
			policy: SchedFCFSClose,
			ops: []schedOp{
				{line: 0, cycle: 0, want: 130},   // 100+20
				{line: 1, cycle: 300, want: 430}, // same row: still 100+20
				{line: 64, cycle: 600, want: 730},
			},
			misses: 3, // every access is an activate
		},
		{
			name:   "frfcfs-open/unqueued misses never reorder",
			policy: SchedFRFCFSOpen,
			ops: []schedOp{
				{line: 0, cycle: 0, want: 170},    // miss
				{line: 64, cycle: 300, want: 470}, // miss: channel idle, nothing to reorder
				{line: 65, cycle: 600, want: 650}, // hit on row 1
			},
			hits: 1, misses: 2,
		},
		{
			name:   "frfcfs-open/alternate queued misses become hits",
			policy: SchedFRFCFSOpen,
			ops: []schedOp{
				{line: 0, cycle: 0, want: 170},   // miss opens row 0; busy till 10
				{line: 64, cycle: 0, want: 60},   // queued miss -> reordered hit (starts 10, 100-60+10)
				{line: 128, cycle: 0, want: 190}, // queued miss, parity says no hide: starts 20, +60
				{line: 256, cycle: 0, want: 80},  // queued miss -> reordered hit again (starts 30)
			},
			queued: 3, hits: 2, misses: 2, reorder: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := testDRAM()
			d.SetSchedPolicy(tc.policy)
			for i, op := range tc.ops {
				var got int64
				if op.write {
					got = d.WriteLine(op.line, op.cycle)
				} else {
					got = d.ReadLine(op.line, op.cycle)
				}
				if got != op.want {
					t.Errorf("op %d (line %d @%d): completion %d, want %d", i, op.line, op.cycle, got, op.want)
				}
			}
			if d.Queued() != tc.queued {
				t.Errorf("queued = %d, want %d", d.Queued(), tc.queued)
			}
			if d.RowHits() != tc.hits {
				t.Errorf("row hits = %d, want %d", d.RowHits(), tc.hits)
			}
			if d.RowMisses() != tc.misses {
				t.Errorf("row misses = %d, want %d", d.RowMisses(), tc.misses)
			}
			if d.Reorders() != tc.reorder {
				t.Errorf("reorders = %d, want %d", d.Reorders(), tc.reorder)
			}
		})
	}
}

// TestDRAMScheduleLargeCycle pins the float64 precision clamp: at cycle
// counts beyond float64's integer range, int64(float64(cycle)) can land
// below the issue cycle, and without the clamp a completion would
// precede its own issue.
func TestDRAMScheduleLargeCycle(t *testing.T) {
	d := testDRAM()
	cycle := int64(1)<<62 + 1 // rounds down to 1<<62 as float64
	got := d.ReadLine(0, cycle)
	if min := cycle + 100 + 10; got < min {
		t.Fatalf("completion %d precedes issue+latency %d at large cycle", got, min)
	}
}

// TestDRAMPolicyDefaultUnchanged pins that the zero-value policy
// (SchedNone) reproduces the historical flat channel exactly — the
// every-experiment-must-not-move contract for this PR.
func TestDRAMPolicyDefaultUnchanged(t *testing.T) {
	flat := testDRAM() // never touched by SetSchedPolicy
	for i := int64(0); i < 100; i++ {
		line := uint64(i * 37 % 512)
		want := flat.latency + int64(flat.period)
		got := flat.ReadLine(line, i*1000) - i*1000
		if got != want {
			t.Fatalf("SchedNone read %d: latency %d, want flat %d", i, got, want)
		}
	}
	if flat.RowHits() != 0 || flat.RowMisses() != 0 {
		t.Fatalf("SchedNone touched row counters: hits=%d misses=%d", flat.RowHits(), flat.RowMisses())
	}
}

func TestSetSchedPolicyValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetSchedPolicy accepted an out-of-range policy")
		}
	}()
	testDRAM().SetSchedPolicy(numSchedPolicies)
}

// TestDRAMSchedZeroAlloc pins the allocation-free arm-switch contract:
// switching the scheduling policy every few accesses (the bandit's Apply
// path) and servicing reads/writes under every policy must not allocate.
func TestDRAMSchedZeroAlloc(t *testing.T) {
	d := testDRAM()
	i := int64(0)
	if n := testing.AllocsPerRun(100, func() {
		for k := 0; k < 100; k++ {
			d.SetSchedPolicy(SchedPolicy(1 + i%int64(numSchedPolicies-1)))
			d.ReadLine(uint64(i%997), i*3)
			d.WriteLine(uint64(i%991), i*3+1)
			i++
		}
	}); n != 0 {
		t.Fatalf("sched-policy path allocates %.1f times per run, want 0", n)
	}
}

// TestCacheInsertPolicies pins the insertion-depth semantics on a tiny
// 1-set, 4-way cache: MRU inserts protect the new line, LIP leaves it
// as the next victim, BIP promotes only every Nth fill — and cold fills
// always promote regardless of policy (the lowest-empty-way invariant).
func TestCacheInsertPolicies(t *testing.T) {
	// fillSeq fills lines 0..n-1 through a warmed cache and returns which
	// of the warmup lines survived.
	warm := []uint64{100, 101, 102, 103}
	newCache := func(p InsertPolicy) *Cache {
		c := NewCache("LLC", 1, 4)
		c.SetInsertPolicy(p)
		for _, l := range warm {
			c.Fill(l, false, false)
		}
		return c
	}

	t.Run("lru evicts in order", func(t *testing.T) {
		c := newCache(InsertMRU)
		c.Fill(200, false, false) // evicts 100, inserts at MRU
		c.Fill(201, false, false) // evicts 101
		if !c.Contains(200) || !c.Contains(201) {
			t.Fatal("MRU-inserted lines evicted prematurely")
		}
		if c.Contains(100) || c.Contains(101) {
			t.Fatal("LRU victims survived")
		}
	})

	t.Run("lip leaves insert at lru", func(t *testing.T) {
		c := newCache(InsertLIP)
		c.Fill(200, false, false) // evicts 100, stays at LRU
		c.Fill(201, false, false) // evicts 200 (the LIP insert), not 101
		if c.Contains(200) {
			t.Fatal("LIP insert was protected; want it to be the next victim")
		}
		if !c.Contains(101) {
			t.Fatal("LIP evicted the working set instead of the new insert")
		}
	})

	t.Run("lip promotes on demand hit", func(t *testing.T) {
		c := newCache(InsertLIP)
		c.Fill(200, false, false) // at LRU
		c.Lookup(200, false)      // demand hit promotes to MRU
		c.Fill(201, false, false) // must evict 101 now, not 200
		if !c.Contains(200) || c.Contains(101) {
			t.Fatal("demand-hit LIP insert was not protected")
		}
	})

	t.Run("bip8 promotes exactly every 8th evicting fill", func(t *testing.T) {
		c := newCache(InsertBIP8)
		for i := uint64(0); i < 16; i++ {
			c.Fill(200+i, false, false)
		}
		// The global counter promotes fills 8 and 16 (lines 207 and 215);
		// every other fill stays at LRU and is re-evicted by its successor.
		resident := []uint64{}
		for i := uint64(0); i < 16; i++ {
			if c.Contains(200 + i) {
				resident = append(resident, 200+i)
			}
		}
		if len(resident) != 2 || resident[0] != 207 || resident[1] != 215 {
			t.Fatalf("BIP8 residents = %v, want [207 215]", resident)
		}
	})

	t.Run("cold fills always promote", func(t *testing.T) {
		c := NewCache("LLC", 1, 4)
		c.SetInsertPolicy(InsertLIP)
		for i := uint64(0); i < 4; i++ {
			c.Fill(i, false, false)
		}
		for i := uint64(0); i < 4; i++ {
			if !c.Contains(i) {
				t.Fatalf("cold fill %d missing: LIP must not starve empty ways", i)
			}
		}
	})
}

func TestSetInsertPolicyValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetInsertPolicy accepted an out-of-range policy")
		}
	}()
	NewCache("LLC", 1, 4).SetInsertPolicy(numInsertPolicies)
}

// TestCacheInsertZeroAlloc pins the allocation-free arm-switch contract
// for the insertion-policy path: switching policies between fills (the
// cacheins scenario's Apply path) must not allocate.
func TestCacheInsertZeroAlloc(t *testing.T) {
	c := NewCache("LLC", 64, 8)
	policies := []InsertPolicy{InsertMRU, InsertLIP, InsertBIP32, InsertBIP8}
	i := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		for k := 0; k < 100; k++ {
			c.SetInsertPolicy(policies[i%4])
			c.Fill(i&0xffff, false, false)
			c.Lookup(i&0xffff, false)
			i++
		}
	}); n != 0 {
		t.Fatalf("insert-policy path allocates %.1f times per run, want 0", n)
	}
}
