package mem

import "fmt"

// Level identifies where a demand access was served.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "MEM"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// Config describes the hierarchy geometry and timing (Table 4 defaults).
type Config struct {
	L1Sets, L1Ways   int
	L2Sets, L2Ways   int
	LLCSets, LLCWays int // LLC capacity per core; scaled by core count

	L1Lat, L2Lat, LLCLat int64 // load-to-use latencies per level (cycles)
	DRAMLat              int64 // uncontended DRAM latency (cycles)

	MTPS    float64 // DRAM channel rate in mega-transfers/s
	FreqGHz float64 // core frequency
	// MSHRs bounds outstanding demand misses (the core's line-fill
	// buffers — the limited demand MLP that prefetching bypasses).
	MSHRs int
	// PrefMSHRs bounds outstanding prefetches (the prefetch queue).
	PrefMSHRs int
}

// DefaultConfig mirrors the paper's Table 4: 32 KB 8-way L1, 256 KB 8-way
// L2, 2 MB 16-way LLC per core, 4 GHz, and the baseline 2400 MTPS channel.
func DefaultConfig() Config {
	return Config{
		L1Sets: 64, L1Ways: 8, // 32 KB
		L2Sets: 512, L2Ways: 8, // 256 KB
		LLCSets: 2048, LLCWays: 16, // 2 MB
		L1Lat: 4, L2Lat: 14, LLCLat: 44,
		DRAMLat: 160,
		MTPS:    2400, FreqGHz: 4,
		MSHRs: 10, PrefMSHRs: 32,
	}
}

// AltCacheConfig is the Fig. 11 variant: 1 MB L2 and 1.5 MB LLC per core
// (Skylake-like), everything else unchanged.
func AltCacheConfig() Config {
	c := DefaultConfig()
	c.L2Sets, c.L2Ways = 2048, 8    // 1 MB
	c.LLCSets, c.LLCWays = 2048, 12 // 1.5 MB
	return c
}

// Shared bundles the resources multiple cores contend on.
type Shared struct {
	LLC  *Cache
	DRAM *DRAM
}

// NewShared builds the shared LLC (scaled by core count) and DRAM channel.
// cores must be a power of two so the set count stays one.
func NewShared(cfg Config, cores int) *Shared {
	if cores <= 0 || cores&(cores-1) != 0 {
		panic(fmt.Sprintf("mem: core count %d must be a power of two", cores))
	}
	return &Shared{
		LLC:  NewCache("LLC", cfg.LLCSets*cores, cfg.LLCWays),
		DRAM: NewDRAM(cfg.MTPS, cfg.FreqGHz, cfg.DRAMLat),
	}
}

// PrefTarget selects the fill level of a prefetch.
type PrefTarget uint8

// Prefetch fill targets.
const (
	// PrefToL2 fills L2 and LLC (the paper's Bandit/Pythia/Bingo/MLOP
	// configuration: trained on L1 misses, filling L2 and LLC).
	PrefToL2 PrefTarget = iota
	// PrefToL1 fills L1 and L2 (used by the multi-level configurations
	// of Fig. 12).
	PrefToL1
	// PrefToLLC fills only the shared LLC — the least intrusive target,
	// part of the paper's §9 target-cache-level extension.
	PrefToLLC
)

// Stats are the hierarchy-level counters the experiments consume.
type Stats struct {
	Loads  int64
	Stores int64

	L2Demand  int64 // L1 misses = L2 demand accesses (bandit step unit)
	LLCDemand int64 // L2 demand misses reaching the LLC
	LLCMisses int64 // demand misses served by DRAM

	PrefIssued  int64 // prefetches that allocated a request
	PrefLate    int64 // demand arrived while the prefetch was in flight
	PrefDropped int64 // prefetches dropped for MSHR pressure
}

// demandMiss mirrors one in-flight demand entry for the full-MSHR stall
// scan: waitForMSHR needs the earliest demand ready time, and this
// side list (at most Config.MSHRs entries) is far cheaper to scan than
// the whole MSHR table.
type demandMiss struct {
	line  uint64
	ready int64
}

// Hierarchy is one core's L1/L2 plus shared LLC/DRAM access machinery.
type Hierarchy struct {
	cfg    Config
	l1, l2 *Cache
	shared *Shared

	mshr          mshrTable
	demand        []demandMiss // in-flight demand misses (waitForMSHR scan)
	demandInFlite int          // in-flight demand misses
	prefInFlite   int          // in-flight prefetches
	pending       fillQueue
	stats         Stats
}

// NewHierarchy builds a single-core hierarchy with its own shared pool.
func NewHierarchy(cfg Config) *Hierarchy {
	return NewCoreHierarchy(cfg, NewShared(cfg, 1))
}

// NewCoreHierarchy builds one core's hierarchy over an existing shared
// LLC/DRAM pool (multi-core experiments share one pool).
func NewCoreHierarchy(cfg Config, shared *Shared) *Hierarchy {
	return &Hierarchy{
		cfg:    cfg,
		l1:     NewCache("L1", cfg.L1Sets, cfg.L1Ways),
		l2:     NewCache("L2", cfg.L2Sets, cfg.L2Ways),
		shared: shared,
		mshr:   newMSHRTable(cfg.MSHRs + cfg.PrefMSHRs),
		demand: make([]demandMiss, 0, cfg.MSHRs),
	}
}

// Stats returns the hierarchy counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// L1 returns the private L1 cache (stats access).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the private L2 cache (stats access).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// LLC returns the shared last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.shared.LLC }

// DRAM returns the shared memory channel.
func (h *Hierarchy) DRAM() *DRAM { return h.shared.DRAM }

// Drain applies all pending fills whose ready time is at or before cycle.
// The core model calls it as simulated time advances. The guard inlines
// into every Access/Prefetch call site, so the common no-fill-ready case
// costs one comparison.
func (h *Hierarchy) Drain(cycle int64) {
	if h.pending.nextReady > cycle {
		return
	}
	h.drainReady(cycle)
}

// drainReady is Drain's slow path: at least one fill is (or may be,
// right after construction) ready.
func (h *Hierarchy) drainReady(cycle int64) {
	for h.pending.len() > 0 && h.pending.topReady() <= cycle {
		f := h.pending.pop()
		h.applyFill(&f)
	}
	if h.pending.len() == 0 {
		h.pending.nextReady = noFillReady
	}
}

// applyFill delivers a line into the caches and retires its MSHR entry.
func (h *Hierarchy) applyFill(f *fill) {
	prefetched := f.isPrefetch
	dirty := false
	demanded := false
	if f.hasEntry {
		if e, ok := h.mshr.remove(f.line); ok {
			demanded = e.demanded
			if e.demanded {
				prefetched = false // a late prefetch fills as a demand line
			}
			dirty = e.dirty
			if e.isPrefetch {
				h.prefInFlite--
			} else {
				h.demandInFlite--
				h.dropDemand(f.line)
			}
		}
	}
	// Fills from memory complete an in-flight MSHR line, which is provably
	// absent from every level (see Cache.FillNew); promotions (fromMem
	// false) may race a demand fill and must keep the duplicate probe.
	if f.fromMem {
		// The LLC copy carries the prefetched bit only when the LLC is
		// the fill target; otherwise timeliness and waste are accounted
		// at the target level to avoid double counting.
		llcPref := prefetched && f.target == PrefToLLC
		if ev := h.shared.LLC.FillNew(f.line, llcPref, false); ev.Valid && ev.Dirty {
			h.shared.DRAM.WriteLine(ev.LineAddr, f.ready)
		}
	}
	switch f.target {
	case PrefToL1:
		h.fillL2(f.line, false, false, f.ready, f.fromMem)
		h.fillL1(f.line, prefetched, dirty, f.ready, f.fromMem)
	case PrefToLLC:
		// LLC-only prefetch: account the prefetched bit in the LLC copy
		// (the fill target), which fromMem inserted clean above; demand
		// fills that merged in flight still reach L2/L1. A promotion from
		// the LLC with an LLC target is a no-op.
		if demanded {
			h.fillL2(f.line, false, dirty, f.ready, f.fromMem)
		}
	default:
		h.fillL2(f.line, prefetched, dirty, f.ready, f.fromMem)
	}
}

// dropDemand removes line from the demand side list (order is
// irrelevant — only the minimum ready time is ever consumed).
func (h *Hierarchy) dropDemand(line uint64) {
	for i := range h.demand {
		if h.demand[i].line == line {
			h.demand[i] = h.demand[len(h.demand)-1]
			h.demand = h.demand[:len(h.demand)-1]
			return
		}
	}
}

// fillL1 inserts into L1, writing back the victim into L2. knownNew
// promises the line is absent (an in-flight fill or a promote right
// after a lookup miss); victim writebacks never make that promise.
func (h *Hierarchy) fillL1(line uint64, prefetched, dirty bool, cycle int64, knownNew bool) {
	var ev Evicted
	if knownNew {
		ev = h.l1.FillNew(line, prefetched, dirty)
	} else {
		ev = h.l1.Fill(line, prefetched, dirty)
	}
	if ev.Valid && ev.Dirty {
		h.fillL2(ev.LineAddr, false, true, cycle, false)
	}
}

// fillL2 inserts into L2, writing back the victim into the LLC.
func (h *Hierarchy) fillL2(line uint64, prefetched, dirty bool, cycle int64, knownNew bool) {
	var ev Evicted
	if knownNew {
		ev = h.l2.FillNew(line, prefetched, dirty)
	} else {
		ev = h.l2.Fill(line, prefetched, dirty)
	}
	if ev.Valid && ev.Dirty {
		if lev := h.shared.LLC.Fill(ev.LineAddr, false, true); lev.Valid && lev.Dirty {
			h.shared.DRAM.WriteLine(lev.LineAddr, cycle)
		}
	}
}

// AccessResult reports the outcome of a demand access.
type AccessResult struct {
	// Done is the cycle the data is available.
	Done int64
	// Level is where the access was served.
	Level Level
	// L2Access reports whether this access reached the L2 (an L1 miss) —
	// the event stream both the prefetchers and the bandit step counter
	// are driven by.
	L2Access bool
	// L2Hit reports whether the L2 probe hit (valid when L2Access).
	L2Hit bool
	// LineAddr is the accessed cache line.
	LineAddr uint64
}

// Access performs a demand load or store at the given cycle and returns
// the completion. Stores allocate like loads (write-allocate) but callers
// typically do not stall on the result.
func (h *Hierarchy) Access(addr uint64, isWrite bool, cycle int64) AccessResult {
	h.Drain(cycle)
	line := LineAddr(addr)
	if isWrite {
		h.stats.Stores++
	} else {
		h.stats.Loads++
	}
	if h.l1.Lookup(line, isWrite) {
		return AccessResult{Done: cycle + h.cfg.L1Lat, Level: LevelL1, LineAddr: line}
	}
	h.stats.L2Demand++
	res := AccessResult{L2Access: true, LineAddr: line}
	if h.l2.Lookup(line, isWrite) {
		h.fillL1(line, false, isWrite, cycle, true) // just missed L1
		res.Done, res.Level, res.L2Hit = cycle+h.cfg.L2Lat, LevelL2, true
		return res
	}
	// In flight already? Merge with the outstanding request.
	if e := h.mshr.get(line); e != nil {
		if e.isPrefetch && !e.demanded {
			h.stats.PrefLate++
		}
		e.demanded = true
		e.dirty = e.dirty || isWrite
		done := e.ready
		if min := cycle + h.cfg.L2Lat; done < min {
			done = min
		}
		res.Done, res.Level = done, LevelMem
		return res
	}
	h.stats.LLCDemand++
	if h.shared.LLC.Lookup(line, isWrite) {
		h.fillL2(line, false, false, cycle, true) // just missed L1 and L2
		h.fillL1(line, false, isWrite, cycle, true)
		res.Done, res.Level = cycle+h.cfg.LLCLat, LevelLLC
		return res
	}
	h.stats.LLCMisses++
	issue := h.waitForMSHR(cycle)
	ready := h.shared.DRAM.ReadLine(line, issue+h.cfg.LLCLat)
	e := h.mshr.put(line)
	e.ready, e.demanded, e.dirty = ready, true, isWrite
	h.demandInFlite++
	h.demand = append(h.demand, demandMiss{line: line, ready: ready})
	// Demand misses fill L1, L2, and LLC when the line arrives.
	h.pending.push(fill{ready: ready, line: line, target: PrefToL1, fromMem: true, hasEntry: true})
	res.Done, res.Level = ready, LevelMem
	return res
}

// waitForMSHR returns the earliest cycle a new miss can issue, stalling
// until an MSHR frees up when all are occupied.
func (h *Hierarchy) waitForMSHR(cycle int64) int64 {
	if h.demandInFlite < h.cfg.MSHRs {
		return cycle
	}
	earliest := int64(-1)
	for i := range h.demand {
		if r := h.demand[i].ready; earliest < 0 || r < earliest {
			earliest = r
		}
	}
	if earliest > cycle {
		h.Drain(earliest)
		return earliest
	}
	h.Drain(cycle)
	return cycle
}

// Prefetch requests a line. Redundant prefetches (line cached at or above
// the target, or already in flight) are dropped. Prefetches consume DRAM
// bandwidth like demand misses; under MSHR pressure they are dropped, not
// queued — prefetches are hints.
func (h *Hierarchy) Prefetch(addr uint64, cycle int64, target PrefTarget) {
	h.Drain(cycle)
	line := LineAddr(addr)
	if h.l2.Contains(line) || (target == PrefToL1 && h.l1.Contains(line)) {
		h.l2.NoteRedundantPrefetch()
		return
	}
	if h.mshr.get(line) != nil {
		h.l2.NoteRedundantPrefetch()
		return
	}
	h.stats.PrefIssued++
	if h.shared.LLC.Contains(line) {
		if target == PrefToLLC {
			h.l2.NoteRedundantPrefetch()
			h.stats.PrefIssued--
			return
		}
		// Promote from LLC into the target level; no DRAM traffic.
		h.pending.push(fill{
			ready: cycle + h.cfg.LLCLat, line: line,
			target: target, isPrefetch: true,
		})
		return
	}
	if h.prefInFlite >= h.cfg.PrefMSHRs {
		h.stats.PrefDropped++
		h.stats.PrefIssued--
		return
	}
	ready := h.shared.DRAM.ReadLine(line, cycle+h.cfg.LLCLat)
	e := h.mshr.put(line)
	e.ready, e.isPrefetch = ready, true
	h.prefInFlite++
	h.pending.push(fill{
		ready: ready, line: line, target: target,
		fromMem: true, isPrefetch: true, hasEntry: true,
	})
}

// Classification summarizes prefetch outcomes for Fig. 9.
type Classification struct {
	Timely int64 // prefetched lines that served a demand hit
	Late   int64 // demanded while still in flight
	Wrong  int64 // evicted without any demand use
}

// Classify aggregates the prefetch outcome counters across the levels that
// carry the prefetched bit (the fill target caches).
func (h *Hierarchy) Classify() Classification {
	l1, l2 := h.l1.Stats(), h.l2.Stats()
	llc := h.shared.LLC.Stats()
	return Classification{
		Timely: l1.PrefUseful + l2.PrefUseful + llc.PrefUseful,
		Late:   h.stats.PrefLate,
		Wrong:  l1.PrefUnused + l2.PrefUnused + llc.PrefUnused,
	}
}
