package mem

import "testing"

// constScale is a BandwidthFault with a fixed period multiplier.
type constScale float64

func (c constScale) PeriodScale(int64) float64 { return float64(c) }

func TestDRAMBandwidthFault(t *testing.T) {
	clean := NewDRAM(2400, 4, 160)
	faulted := NewDRAM(2400, 4, 160)
	faulted.SetBandwidthFault(constScale(8))

	// Back-to-back reads queue on the channel; an 8x period stretch must
	// push completions out by ~8x the streaming component.
	var lastClean, lastFaulted int64
	for i := 0; i < 64; i++ {
		lastClean = clean.Read(0)
		lastFaulted = faulted.Read(0)
	}
	if lastFaulted <= lastClean {
		t.Fatalf("faulted completion %d not later than clean %d", lastFaulted, lastClean)
	}
	streamClean := float64(lastClean - clean.latency)
	streamFaulted := float64(lastFaulted - faulted.latency)
	if ratio := streamFaulted / streamClean; ratio < 7 || ratio > 9 {
		t.Errorf("streaming slowdown %.2f, want ~8", ratio)
	}

	// Scale 1 (or clearing the fault) restores clean behaviour.
	faulted.Reset()
	faulted.SetBandwidthFault(nil)
	clean.Reset()
	if got, want := faulted.Read(0), clean.Read(0); got != want {
		t.Errorf("cleared fault: completion %d != clean %d", got, want)
	}
}
