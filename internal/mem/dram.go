package mem

import "fmt"

// DRAM models a bandwidth-limited memory channel: a fixed access latency
// plus a serialization period per cache-line transfer derived from the
// channel's transfer rate. When requests arrive faster than the channel
// can stream lines out, they queue and the observed latency grows — the
// behaviour behind the paper's bandwidth-sensitivity sweep (Fig. 10),
// where aggressive prefetching stops paying off at low MTPS.
//
// An optional scheduling policy (SetSchedPolicy) layers a row-buffer
// model on top: open-page policies pay less for row hits and more for
// row misses, close-page pays a flat activate cost, and FR-FCFS models
// the scheduler reordering queued requests to favour row hits. The zero
// value SchedNone is the historical flat-latency channel and is the
// default everywhere.
type DRAM struct {
	latency  int64   // uncontended access latency in core cycles
	period   float64 // core cycles needed to stream one 64B line
	nextFree float64 // cycle at which the channel is next available

	// fault, when non-nil, transiently degrades the channel (the
	// robustness experiments' bandwidth-collapse bursts). The clean path
	// pays only a nil check.
	fault BandwidthFault

	reads      int64
	writes     int64
	busyCycles float64
	queued     int64 // requests that waited on the channel

	// Row-buffer model state (active only when policy != SchedNone).
	policy    SchedPolicy
	openRow   uint64 // currently open row in the (single modelled) bank
	haveRow   bool   // a row is open
	frParity  uint64 // deterministic FR-FCFS reorder counter
	rowHits   int64
	rowMisses int64
	reorders  int64 // queued row misses FR-FCFS turned into hits
}

// SchedPolicy selects the channel's request-scheduling / row-buffer
// policy — the arm space of the dramsched decision scenario. SchedNone
// (the zero value) disables the row model entirely and reproduces the
// flat-latency channel bit for bit.
type SchedPolicy uint8

// Scheduling policies.
const (
	// SchedNone: flat latency, no row-buffer model (historical behaviour).
	SchedNone SchedPolicy = iota
	// SchedFCFSOpen: in-order service, rows stay open after an access —
	// row hits skip the activate, row misses pay precharge+activate.
	SchedFCFSOpen
	// SchedFCFSClose: in-order service, rows auto-precharge after every
	// access — a flat activate cost, never a precharge stall.
	SchedFCFSClose
	// SchedFRFCFSOpen: open-page with first-ready reordering — when
	// requests queue on the busy channel, the scheduler services row
	// hits ahead of row misses; modelled deterministically as every
	// other queued row miss finding a row-hit candidate to run instead.
	SchedFRFCFSOpen

	numSchedPolicies
)

// SchedPolicyNames lists the selectable policies in arm order (SchedNone
// is not an arm: it is the absence of the model).
func SchedPolicyNames() []string { return []string{"fcfs-open", "fcfs-close", "frfcfs-open"} }

// String implements fmt.Stringer.
func (p SchedPolicy) String() string {
	switch p {
	case SchedNone:
		return "none"
	case SchedFCFSOpen:
		return "fcfs-open"
	case SchedFCFSClose:
		return "fcfs-close"
	case SchedFRFCFSOpen:
		return "frfcfs-open"
	default:
		return fmt.Sprintf("sched(%d)", uint8(p))
	}
}

// Row-model timing offsets relative to the configured flat latency.
// With the default 160-cycle latency: an open-page row hit completes in
// 100 cycles, an open-page row miss (precharge + activate) in 220, and
// a close-page access (activate only, precharge hidden after the
// previous access) in 180.
const (
	rowHitSave     = 60 // cycles saved by an open-page row hit
	rowMissPenalty = 60 // extra cycles for precharge+activate on a row miss
	closeActivate  = 20 // extra cycles for the unconditional activate
)

// rowShift converts a line address to its DRAM row: 64 lines x 64 B =
// 4 KB rows.
const rowShift = 6

// BandwidthFault transiently degrades the channel: PeriodScale returns
// the multiplier (>= 1) applied to the per-line streaming period for a
// transfer issued at the given cycle. Implementations must be pure
// functions of the cycle so the degradation pattern does not depend on
// request interleaving (the experiment engine's determinism contract).
type BandwidthFault interface {
	PeriodScale(cycle int64) float64
}

// SetBandwidthFault installs a channel-degradation fault (nil clears it).
func (d *DRAM) SetBandwidthFault(f BandwidthFault) { d.fault = f }

// SetSchedPolicy switches the scheduling policy. Safe to call mid-run
// (it is the dramsched scenario's Apply path) and allocation-free; row
// state carries across switches like real hardware's would.
func (d *DRAM) SetSchedPolicy(p SchedPolicy) {
	if p >= numSchedPolicies {
		panic(fmt.Sprintf("mem: invalid scheduling policy %d", uint8(p)))
	}
	d.policy = p
}

// Policy returns the active scheduling policy.
func (d *DRAM) Policy() SchedPolicy { return d.policy }

// NewDRAM builds a channel for a core running at freqGHz with a transfer
// rate of mtps mega-transfers/s (8 bytes per transfer, DDR-style) and the
// given uncontended latency in core cycles.
func NewDRAM(mtps, freqGHz float64, latencyCycles int64) *DRAM {
	if mtps <= 0 || freqGHz <= 0 {
		panic(fmt.Sprintf("mem: invalid DRAM rate mtps=%v freq=%v", mtps, freqGHz))
	}
	cyclesPerTransfer := freqGHz * 1000 / mtps // (freq*1e9) / (mtps*1e6)
	const transfersPerLine = (1 << lineShift) / 8
	return &DRAM{
		latency: latencyCycles,
		period:  cyclesPerTransfer * transfersPerLine,
	}
}

// Read schedules a line read issued at cycle and returns its completion
// cycle, accounting for channel occupancy. Equivalent to ReadLine with
// an unknown address; callers that know the line should prefer ReadLine
// so row-buffer policies see real locality.
func (d *DRAM) Read(cycle int64) int64 { return d.ReadLine(0, cycle) }

// ReadLine schedules a read of the given cache line issued at cycle and
// returns its completion cycle, accounting for channel occupancy and —
// when a scheduling policy is active — row-buffer locality.
func (d *DRAM) ReadLine(line uint64, cycle int64) int64 {
	d.reads++
	return d.schedule(line, cycle)
}

// Write schedules a line writeback at cycle. The returned completion is
// when the channel finishes the transfer (callers normally ignore it —
// writebacks are off the critical path — but they still consume
// bandwidth). Equivalent to WriteLine with an unknown address.
func (d *DRAM) Write(cycle int64) int64 { return d.WriteLine(0, cycle) }

// WriteLine schedules a writeback of the given cache line at cycle.
func (d *DRAM) WriteLine(line uint64, cycle int64) int64 {
	d.writes++
	return d.schedule(line, cycle)
}

// schedule serializes one line transfer onto the channel. Requests are
// serviced in call order, not issue-cycle order: a writeback issued at
// an earlier cycle than an already-scheduled read still queues behind
// it (the fill queue delivers events in ready order, so call order is
// the model's arrival order).
func (d *DRAM) schedule(line uint64, cycle int64) int64 {
	period := d.period
	if d.fault != nil {
		if s := d.fault.PeriodScale(cycle); s > 1 {
			period *= s
		}
	}
	start := float64(cycle)
	waited := false
	if d.nextFree > start {
		start = d.nextFree
		d.queued++
		waited = true
	}
	lat := d.latency
	if d.policy != SchedNone {
		lat += d.rowLatency(line, waited)
	}
	d.nextFree = start + period
	d.busyCycles += period
	s := int64(start)
	if s < cycle {
		// float64 cannot represent every int64 exactly; at very large
		// cycle counts the conversion can round below the issue cycle,
		// which would let a completion land before cycle+latency. Clamp
		// so completions never precede their issue.
		s = cycle
	}
	return s + lat + int64(period)
}

// rowLatency returns the row-buffer latency adjustment for an access to
// line, updating row state and hit/miss counters. waited reports that
// the request queued on a busy channel — the window in which FR-FCFS
// reordering has anything to reorder.
func (d *DRAM) rowLatency(line uint64, waited bool) int64 {
	row := line >> rowShift
	if d.policy == SchedFCFSClose {
		// Closed page: the previous access auto-precharged, so every
		// access pays exactly one activate and never a precharge stall.
		d.rowMisses++
		return closeActivate
	}
	if d.haveRow && row == d.openRow {
		d.rowHits++
		return -rowHitSave
	}
	if d.policy == SchedFRFCFSOpen && waited {
		// First-ready reordering: with requests queued, the scheduler
		// can usually find a row hit to service ahead of this miss, so
		// the miss's precharge overlaps another transfer. Modelled
		// deterministically as every other queued miss being hidden;
		// the open row is unchanged (the reordered hit targeted it).
		d.frParity++
		if d.frParity&1 == 1 {
			d.reorders++
			d.rowHits++
			return -rowHitSave
		}
	}
	d.rowMisses++
	d.haveRow, d.openRow = true, row
	return rowMissPenalty
}

// Reads returns the number of line reads serviced.
func (d *DRAM) Reads() int64 { return d.reads }

// Writes returns the number of line writebacks serviced.
func (d *DRAM) Writes() int64 { return d.writes }

// Queued returns how many requests found the channel busy.
func (d *DRAM) Queued() int64 { return d.queued }

// RowHits returns row-buffer hits (0 unless a policy is active).
func (d *DRAM) RowHits() int64 { return d.rowHits }

// RowMisses returns row-buffer misses/activates (0 unless a policy is
// active).
func (d *DRAM) RowMisses() int64 { return d.rowMisses }

// Reorders returns how many queued row misses FR-FCFS serviced as hits.
func (d *DRAM) Reorders() int64 { return d.reorders }

// Utilization returns the fraction of cycles the channel was busy up to
// the given cycle.
func (d *DRAM) Utilization(cycle int64) float64 {
	if cycle <= 0 {
		return 0
	}
	u := d.busyCycles / float64(cycle)
	if u > 1 {
		u = 1
	}
	return u
}

// BusyCycles returns the cumulative cycles the channel has been occupied;
// callers can difference it across a window for instantaneous utilization.
func (d *DRAM) BusyCycles() float64 { return d.busyCycles }

// LinePeriodCycles returns the cycles needed to stream one line — the
// inverse bandwidth seen by the hierarchy.
func (d *DRAM) LinePeriodCycles() float64 { return d.period }

// Reset clears scheduling state and counters. The policy itself is
// configuration, not state, and survives.
func (d *DRAM) Reset() {
	d.nextFree = 0
	d.reads = 0
	d.writes = 0
	d.busyCycles = 0
	d.queued = 0
	d.openRow = 0
	d.haveRow = false
	d.frParity = 0
	d.rowHits = 0
	d.rowMisses = 0
	d.reorders = 0
}
