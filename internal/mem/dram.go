package mem

import "fmt"

// DRAM models a bandwidth-limited memory channel: a fixed access latency
// plus a serialization period per cache-line transfer derived from the
// channel's transfer rate. When requests arrive faster than the channel
// can stream lines out, they queue and the observed latency grows — the
// behaviour behind the paper's bandwidth-sensitivity sweep (Fig. 10),
// where aggressive prefetching stops paying off at low MTPS.
type DRAM struct {
	latency  int64   // uncontended access latency in core cycles
	period   float64 // core cycles needed to stream one 64B line
	nextFree float64 // cycle at which the channel is next available

	// fault, when non-nil, transiently degrades the channel (the
	// robustness experiments' bandwidth-collapse bursts). The clean path
	// pays only a nil check.
	fault BandwidthFault

	reads      int64
	writes     int64
	busyCycles float64
	queued     int64 // requests that waited on the channel
}

// BandwidthFault transiently degrades the channel: PeriodScale returns
// the multiplier (>= 1) applied to the per-line streaming period for a
// transfer issued at the given cycle. Implementations must be pure
// functions of the cycle so the degradation pattern does not depend on
// request interleaving (the experiment engine's determinism contract).
type BandwidthFault interface {
	PeriodScale(cycle int64) float64
}

// SetBandwidthFault installs a channel-degradation fault (nil clears it).
func (d *DRAM) SetBandwidthFault(f BandwidthFault) { d.fault = f }

// NewDRAM builds a channel for a core running at freqGHz with a transfer
// rate of mtps mega-transfers/s (8 bytes per transfer, DDR-style) and the
// given uncontended latency in core cycles.
func NewDRAM(mtps, freqGHz float64, latencyCycles int64) *DRAM {
	if mtps <= 0 || freqGHz <= 0 {
		panic(fmt.Sprintf("mem: invalid DRAM rate mtps=%v freq=%v", mtps, freqGHz))
	}
	cyclesPerTransfer := freqGHz * 1000 / mtps // (freq*1e9) / (mtps*1e6)
	const transfersPerLine = (1 << lineShift) / 8
	return &DRAM{
		latency: latencyCycles,
		period:  cyclesPerTransfer * transfersPerLine,
	}
}

// Read schedules a line read issued at cycle and returns its completion
// cycle, accounting for channel occupancy.
func (d *DRAM) Read(cycle int64) int64 {
	d.reads++
	return d.schedule(cycle)
}

// Write schedules a line writeback at cycle. The returned completion is
// when the channel finishes the transfer (callers normally ignore it —
// writebacks are off the critical path — but they still consume
// bandwidth).
func (d *DRAM) Write(cycle int64) int64 {
	d.writes++
	return d.schedule(cycle)
}

func (d *DRAM) schedule(cycle int64) int64 {
	period := d.period
	if d.fault != nil {
		if s := d.fault.PeriodScale(cycle); s > 1 {
			period *= s
		}
	}
	start := float64(cycle)
	if d.nextFree > start {
		start = d.nextFree
		d.queued++
	}
	d.nextFree = start + period
	d.busyCycles += period
	return int64(start) + d.latency + int64(period)
}

// Reads returns the number of line reads serviced.
func (d *DRAM) Reads() int64 { return d.reads }

// Writes returns the number of line writebacks serviced.
func (d *DRAM) Writes() int64 { return d.writes }

// Queued returns how many requests found the channel busy.
func (d *DRAM) Queued() int64 { return d.queued }

// Utilization returns the fraction of cycles the channel was busy up to
// the given cycle.
func (d *DRAM) Utilization(cycle int64) float64 {
	if cycle <= 0 {
		return 0
	}
	u := d.busyCycles / float64(cycle)
	if u > 1 {
		u = 1
	}
	return u
}

// BusyCycles returns the cumulative cycles the channel has been occupied;
// callers can difference it across a window for instantaneous utilization.
func (d *DRAM) BusyCycles() float64 { return d.busyCycles }

// LinePeriodCycles returns the cycles needed to stream one line — the
// inverse bandwidth seen by the hierarchy.
func (d *DRAM) LinePeriodCycles() float64 { return d.period }

// Reset clears scheduling state and counters.
func (d *DRAM) Reset() {
	d.nextFree = 0
	d.reads = 0
	d.writes = 0
	d.busyCycles = 0
	d.queued = 0
}
