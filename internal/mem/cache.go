// Package mem models the memory hierarchy of the paper's trace-driven
// evaluation platform (Table 4): set-associative write-back caches with
// LRU replacement, miss-status holding registers, a bandwidth-limited DRAM
// channel, and a three-level hierarchy that classifies prefetches as
// timely, late, or wrong (Fig. 9) and exposes the L2-demand-access count
// that defines the prefetching bandit step.
package mem

import "fmt"

// lineShift is log2 of the cache line size (64 B).
const lineShift = 6

// LineAddr returns the line address (byte address >> lineShift).
func LineAddr(addr uint64) uint64 { return addr >> lineShift }

// invalidTag marks an empty way in the packed tag array. Real line
// addresses are byte addresses shifted right by lineShift, so they are
// bounded by 2^58 and can never collide with the sentinel.
const invalidTag = ^uint64(0)

// lineMeta is the per-way bookkeeping state, kept in an array parallel
// to the packed tags: the tag scan — the per-access hot loop — touches
// only 8 bytes per way, and these flag bytes only on the line it
// decides on.
type lineMeta struct {
	dirty      bool
	prefetched bool // filled by a prefetch...
	used       bool // ...and since referenced by a demand access
}

// CacheStats counts cache-local events.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Fills         int64
	Evictions     int64
	DirtyEvicts   int64
	PrefFills     int64
	PrefUseful    int64 // prefetched lines that saw a demand hit
	PrefUnused    int64 // prefetched lines evicted untouched ("wrong")
	PrefRedundant int64 // prefetches dropped because the line was present
}

// Cache is a set-associative, write-back, write-allocate cache with true
// LRU replacement. The zero value is unusable; construct with NewCache.
//
// Storage is flat arrays indexed by set*ways+way: packed tags (with
// invalidTag marking empty ways) and the parallel metadata. Recency is
// an intrusive doubly linked list per set (next/prev hold way indices)
// ordered LRU→MRU: a touch relinks in O(1) and the victim is always the
// set's head, so neither lookups nor fills scan recency state. The list
// starts in way order and empty ways are never touched, so while any
// way is empty the head is the lowest-indexed empty way — exactly the
// victim order of the timestamp scan this replaced; after that, touch
// order is a strict total order and head = least recently used.
type Cache struct {
	name string
	tags []uint64
	meta []lineMeta
	next []uint8 // toward MRU, per way
	prev []uint8 // toward LRU, per way
	head []uint8 // LRU way, per set
	tail []uint8 // MRU way, per set

	ways  int
	mask  uint64
	stats CacheStats

	// insert selects where fills land in the recency order (the cacheins
	// decision scenario). InsertMRU is classic LRU; bipCount drives the
	// deterministic BIP epsilon.
	insert   InsertPolicy
	bipCount uint64
}

// InsertPolicy selects where a filled line enters a set's recency order.
// The zero value InsertMRU is classic LRU insertion (historical
// behaviour).
type InsertPolicy uint8

// Insertion policies.
const (
	// InsertMRU: fills go to the MRU position — classic LRU replacement.
	InsertMRU InsertPolicy = iota
	// InsertLIP: LRU-insertion policy — fills stay at the LRU position,
	// so a line must be re-referenced to survive the next fill. Makes
	// thrashing scans pass through a single way instead of flushing the
	// set.
	InsertLIP
	// InsertBIP32: bimodal insertion — LIP, except every 32nd fill goes
	// to MRU, letting a small resident fraction of a thrashing working
	// set stick. The epsilon counter is global and deterministic.
	InsertBIP32
	// InsertBIP8: bimodal insertion with a 1/8 MRU fraction.
	InsertBIP8

	numInsertPolicies
)

// InsertPolicyNames lists the policies in arm order.
func InsertPolicyNames() []string { return []string{"lru", "lip", "bip32", "bip8"} }

// String implements fmt.Stringer.
func (p InsertPolicy) String() string {
	switch p {
	case InsertMRU:
		return "lru"
	case InsertLIP:
		return "lip"
	case InsertBIP32:
		return "bip32"
	case InsertBIP8:
		return "bip8"
	default:
		return fmt.Sprintf("insert(%d)", uint8(p))
	}
}

// SetInsertPolicy switches the insertion policy. Safe to call mid-run
// (it is the cacheins scenario's Apply path) and allocation-free;
// resident lines keep their current recency positions.
func (c *Cache) SetInsertPolicy(p InsertPolicy) {
	if p >= numInsertPolicies {
		panic(fmt.Sprintf("mem: cache %s invalid insertion policy %d", c.name, uint8(p)))
	}
	c.insert = p
}

// Insert returns the active insertion policy.
func (c *Cache) Insert() InsertPolicy { return c.insert }

// NewCache builds a cache with the given geometry. sets must be a power of
// two; ways must be positive (and at most 255, for the uint8 LRU links).
func NewCache(name string, sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %s sets %d not a power of two", name, sets))
	}
	if ways <= 0 || ways > 255 {
		panic(fmt.Sprintf("mem: cache %s needs 1..255 ways, got %d", name, ways))
	}
	c := &Cache{
		name: name,
		tags: make([]uint64, sets*ways),
		meta: make([]lineMeta, sets*ways),
		next: make([]uint8, sets*ways),
		prev: make([]uint8, sets*ways),
		head: make([]uint8, sets),
		tail: make([]uint8, sets),
		ways: ways,
		mask: uint64(sets - 1),
	}
	c.initState()
	return c
}

// initState resets tags and links every set's LRU list in way order.
func (c *Cache) initState() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	sets := len(c.head)
	for s := 0; s < sets; s++ {
		base := s * c.ways
		for w := 0; w < c.ways; w++ {
			c.next[base+w] = uint8(w + 1)
			c.prev[base+w] = uint8(w - 1) // way 0 wraps; head has no prev
		}
		c.head[s] = 0
		c.tail[s] = uint8(c.ways - 1)
	}
}

// Name returns the cache's name ("L1", "L2", "LLC").
func (c *Cache) Name() string { return c.name }

// Stats returns the event counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// SizeBytes returns the cache capacity.
func (c *Cache) SizeBytes() int { return len(c.tags) * (1 << lineShift) }

// base returns the first storage index of the set holding lineAddr.
func (c *Cache) base(lineAddr uint64) int { return int(lineAddr&c.mask) * c.ways }

// find returns the storage index holding lineAddr, or -1. The scan runs
// over the packed tag array only; the invalidTag sentinel makes a
// separate validity check unnecessary.
func (c *Cache) find(base int, lineAddr uint64) int {
	for i, t := range c.tags[base : base+c.ways] {
		if t == lineAddr {
			return base + i
		}
	}
	return -1
}

// touch moves way w (a storage index) of set to the MRU end of its list.
func (c *Cache) touch(set, base, w int) {
	ww := uint8(w - base)
	if c.tail[set] == ww {
		return
	}
	// Unlink.
	if c.head[set] == ww {
		c.head[set] = c.next[w]
	} else {
		p := base + int(c.prev[w])
		c.next[p] = c.next[w]
		c.prev[base+int(c.next[w])] = c.prev[w]
	}
	// Append at MRU.
	t := base + int(c.tail[set])
	c.next[t] = ww
	c.prev[w] = c.tail[set]
	c.tail[set] = ww
}

// Lookup probes the cache with a demand access. On a hit it updates LRU
// and the dirty/used bits and returns true.
func (c *Cache) Lookup(lineAddr uint64, isWrite bool) bool {
	set := int(lineAddr & c.mask)
	base := set * c.ways
	// MRU-first: repeated accesses to one line (sequential words of a
	// streaming access pattern) hit the tail way, where touch is a no-op.
	// A line occupies at most one way, so probing the tail first cannot
	// change the outcome.
	if w := base + int(c.tail[set]); c.tags[w] == lineAddr {
		m := &c.meta[w]
		if isWrite {
			m.dirty = true
		}
		if m.prefetched && !m.used {
			m.used = true
			c.stats.PrefUseful++
		}
		c.stats.Hits++
		return true
	}
	w := c.find(base, lineAddr)
	if w < 0 {
		c.stats.Misses++
		return false
	}
	c.touch(set, base, w)
	m := &c.meta[w]
	if isWrite {
		m.dirty = true
	}
	if m.prefetched && !m.used {
		m.used = true
		c.stats.PrefUseful++
	}
	c.stats.Hits++
	return true
}

// Contains probes without updating any state (used to drop redundant
// prefetches).
func (c *Cache) Contains(lineAddr uint64) bool {
	return c.find(c.base(lineAddr), lineAddr) >= 0
}

// Evicted describes a victim pushed out by Fill.
type Evicted struct {
	LineAddr uint64
	Dirty    bool
	Valid    bool
}

// Fill inserts a line (demand fill if prefetched is false). It returns the
// evicted victim, if any. Filling a line that is already present refreshes
// its LRU position instead of duplicating it.
func (c *Cache) Fill(lineAddr uint64, prefetched, dirty bool) Evicted {
	set := int(lineAddr & c.mask)
	base := set * c.ways
	if hit := c.find(base, lineAddr); hit >= 0 {
		// Already present: refresh (a racing demand fill may beat a
		// prefetch).
		c.touch(set, base, hit)
		m := &c.meta[hit]
		m.dirty = m.dirty || dirty
		if m.prefetched && !prefetched {
			// A demand fill of a prefetched line counts as a use.
			if !m.used {
				m.used = true
				c.stats.PrefUseful++
			}
		}
		return Evicted{}
	}
	return c.fillVictim(set, base, lineAddr, prefetched, dirty)
}

// FillNew is Fill for a line the caller has proven absent, skipping the
// duplicate probe. The hierarchy uses it for fills that complete a miss:
// an MSHR-tracked line is in no cache, and while it is in flight nothing
// can insert it (writeback victims were cached lines, promotions require
// LLC presence, and duplicate requests merge in the MSHR) — and for the
// synchronous promote-on-hit fills issued right after a lookup miss.
func (c *Cache) FillNew(lineAddr uint64, prefetched, dirty bool) Evicted {
	set := int(lineAddr & c.mask)
	return c.fillVictim(set, set*c.ways, lineAddr, prefetched, dirty)
}

// fillVictim evicts the set's LRU way and installs lineAddr in its place.
func (c *Cache) fillVictim(set, base int, lineAddr uint64, prefetched, dirty bool) Evicted {
	victim := base + int(c.head[set])
	var ev Evicted
	v := &c.meta[victim]
	cold := true
	if t := c.tags[victim]; t != invalidTag {
		cold = false
		ev = Evicted{LineAddr: t, Dirty: v.dirty, Valid: true}
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyEvicts++
		}
		if v.prefetched && !v.used {
			c.stats.PrefUnused++
		}
	}
	// Insertion policy: where the filled line enters the recency order.
	// The victim way is already the set's LRU head, so LIP's
	// insert-at-LRU is "do nothing" and the line is the next victim
	// unless a demand hit promotes it first. Cold fills (an empty way)
	// always promote: victim selection must walk the remaining empty
	// ways before any policy can sensibly apply — this also preserves
	// the lowest-empty-way victim order the recency list is built on.
	switch {
	case cold || c.insert == InsertMRU:
		c.touch(set, base, victim)
	case c.insert == InsertLIP:
		// leave at LRU
	case c.insert == InsertBIP32:
		c.bipCount++
		if c.bipCount&31 == 0 {
			c.touch(set, base, victim)
		}
	case c.insert == InsertBIP8:
		c.bipCount++
		if c.bipCount&7 == 0 {
			c.touch(set, base, victim)
		}
	}
	c.tags[victim] = lineAddr
	*v = lineMeta{dirty: dirty, prefetched: prefetched}
	c.stats.Fills++
	if prefetched {
		c.stats.PrefFills++
	}
	return ev
}

// NoteRedundantPrefetch counts a prefetch dropped because the target line
// was already cached or in flight.
func (c *Cache) NoteRedundantPrefetch() { c.stats.PrefRedundant++ }

// Reset clears contents and statistics. The insertion policy is
// configuration and survives; its epsilon counter is state and does not.
func (c *Cache) Reset() {
	c.initState()
	for i := range c.meta {
		c.meta[i] = lineMeta{}
	}
	c.stats = CacheStats{}
	c.bipCount = 0
}
