// Package mem models the memory hierarchy of the paper's trace-driven
// evaluation platform (Table 4): set-associative write-back caches with
// LRU replacement, miss-status holding registers, a bandwidth-limited DRAM
// channel, and a three-level hierarchy that classifies prefetches as
// timely, late, or wrong (Fig. 9) and exposes the L2-demand-access count
// that defines the prefetching bandit step.
package mem

import "fmt"

// lineShift is log2 of the cache line size (64 B).
const lineShift = 6

// LineAddr returns the line address (byte address >> lineShift).
func LineAddr(addr uint64) uint64 { return addr >> lineShift }

// cacheLine is one way of one set.
type cacheLine struct {
	tag        uint64
	lastUse    int64
	valid      bool
	dirty      bool
	prefetched bool // filled by a prefetch...
	used       bool // ...and since referenced by a demand access
}

// CacheStats counts cache-local events.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Fills         int64
	Evictions     int64
	DirtyEvicts   int64
	PrefFills     int64
	PrefUseful    int64 // prefetched lines that saw a demand hit
	PrefUnused    int64 // prefetched lines evicted untouched ("wrong")
	PrefRedundant int64 // prefetches dropped because the line was present
}

// Cache is a set-associative, write-back, write-allocate cache with true
// LRU replacement. The zero value is unusable; construct with NewCache.
type Cache struct {
	name  string
	sets  [][]cacheLine
	mask  uint64
	clock int64
	stats CacheStats
}

// NewCache builds a cache with the given geometry. sets must be a power of
// two; ways must be positive.
func NewCache(name string, sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %s sets %d not a power of two", name, sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("mem: cache %s needs positive ways", name))
	}
	storage := make([]cacheLine, sets*ways)
	s := make([][]cacheLine, sets)
	for i := range s {
		s[i] = storage[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return &Cache{name: name, sets: s, mask: uint64(sets - 1)}
}

// Name returns the cache's name ("L1", "L2", "LLC").
func (c *Cache) Name() string { return c.name }

// Stats returns the event counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// SizeBytes returns the cache capacity.
func (c *Cache) SizeBytes() int { return len(c.sets) * len(c.sets[0]) * (1 << lineShift) }

// set returns the set for a line address.
func (c *Cache) set(lineAddr uint64) []cacheLine { return c.sets[lineAddr&c.mask] }

// find returns the way holding lineAddr in set, or -1. The set indexing
// and tag scan are hoisted here so Lookup, Contains, and Fill — which the
// prefetch path calls back-to-back on the same line — share one shape the
// compiler can inline instead of three hand-rolled loops.
func find(set []cacheLine, lineAddr uint64) int {
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return i
		}
	}
	return -1
}

// Lookup probes the cache with a demand access. On a hit it updates LRU
// and the dirty/used bits and returns true.
func (c *Cache) Lookup(lineAddr uint64, isWrite bool) bool {
	c.clock++
	set := c.set(lineAddr)
	w := find(set, lineAddr)
	if w < 0 {
		c.stats.Misses++
		return false
	}
	l := &set[w]
	l.lastUse = c.clock
	if isWrite {
		l.dirty = true
	}
	if l.prefetched && !l.used {
		l.used = true
		c.stats.PrefUseful++
	}
	c.stats.Hits++
	return true
}

// Contains probes without updating any state (used to drop redundant
// prefetches).
func (c *Cache) Contains(lineAddr uint64) bool {
	return find(c.set(lineAddr), lineAddr) >= 0
}

// Evicted describes a victim pushed out by Fill.
type Evicted struct {
	LineAddr uint64
	Dirty    bool
	Valid    bool
}

// Fill inserts a line (demand fill if prefetched is false). It returns the
// evicted victim, if any. Filling a line that is already present refreshes
// its LRU position instead of duplicating it.
func (c *Cache) Fill(lineAddr uint64, prefetched, dirty bool) Evicted {
	c.clock++
	set := c.set(lineAddr)
	// One pass finds both the present line and the LRU victim, instead of
	// a presence scan followed by a victim scan.
	hit, victim := -1, 0
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == lineAddr {
			hit = i
			break
		}
		if !set[victim].valid {
			continue // an invalid way already wins victim selection
		}
		if !l.valid || l.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if hit >= 0 {
		// Already present: refresh (a racing demand fill may beat a
		// prefetch).
		l := &set[hit]
		l.lastUse = c.clock
		l.dirty = l.dirty || dirty
		if l.prefetched && !prefetched {
			// A demand fill of a prefetched line counts as a use.
			if !l.used {
				l.used = true
				c.stats.PrefUseful++
			}
		}
		return Evicted{}
	}
	var ev Evicted
	v := &set[victim]
	if v.valid {
		ev = Evicted{LineAddr: v.tag, Dirty: v.dirty, Valid: true}
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyEvicts++
		}
		if v.prefetched && !v.used {
			c.stats.PrefUnused++
		}
	}
	*v = cacheLine{tag: lineAddr, lastUse: c.clock, valid: true, dirty: dirty, prefetched: prefetched}
	c.stats.Fills++
	if prefetched {
		c.stats.PrefFills++
	}
	return ev
}

// NoteRedundantPrefetch counts a prefetch dropped because the target line
// was already cached or in flight.
func (c *Cache) NoteRedundantPrefetch() { c.stats.PrefRedundant++ }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = cacheLine{}
		}
	}
	c.clock = 0
	c.stats = CacheStats{}
}
