package mem

import (
	"testing"

	"microbandit/internal/xrand"
)

// TestHierarchyStressRandomTraffic drives random demand and prefetch
// traffic and checks the structural invariants: MSHR counters track the
// map, every fill eventually drains, and classification counters stay
// consistent with issue counters.
func TestHierarchyStressRandomTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 4
	cfg.PrefMSHRs = 4
	h := NewHierarchy(cfg)
	rng := xrand.New(123)
	var cycle int64
	for i := 0; i < 50_000; i++ {
		addr := uint64(rng.Intn(1 << 22)) // 4M byte region
		switch rng.Intn(4) {
		case 0:
			h.Prefetch(addr, cycle, PrefToL2)
		case 1:
			r := h.Access(addr, true, cycle)
			if r.Done < cycle {
				t.Fatalf("store completion %d before issue %d", r.Done, cycle)
			}
		default:
			r := h.Access(addr, false, cycle)
			if r.Done < cycle {
				t.Fatalf("load completion %d before issue %d", r.Done, cycle)
			}
		}
		cycle += int64(rng.Intn(8))
		// Internal consistency of the MSHR bookkeeping.
		if h.demandInFlite < 0 || h.prefInFlite < 0 {
			t.Fatalf("negative in-flight counters %d/%d", h.demandInFlite, h.prefInFlite)
		}
		if h.demandInFlite+h.prefInFlite != h.mshr.len() {
			t.Fatalf("in-flight counters %d+%d != mshr size %d",
				h.demandInFlite, h.prefInFlite, h.mshr.len())
		}
		if h.demandInFlite > cfg.MSHRs {
			t.Fatalf("demand MSHRs over capacity: %d", h.demandInFlite)
		}
		if h.prefInFlite > cfg.PrefMSHRs {
			t.Fatalf("prefetch MSHRs over capacity: %d", h.prefInFlite)
		}
	}
	// Everything drains at quiescence. The driver is open-loop, so the
	// DRAM backlog can extend far beyond the driver's clock; drain to the
	// end of time.
	h.Drain(1 << 62)
	if h.mshr.len() != 0 || h.pending.len() != 0 {
		t.Errorf("residual state after quiescence: mshr=%d pending=%d",
			h.mshr.len(), h.pending.len())
	}
	st := h.Stats()
	cl := h.Classify()
	if cl.Timely+cl.Wrong > st.PrefIssued {
		t.Errorf("classified outcomes (%d+%d) exceed issued prefetches (%d)",
			cl.Timely, cl.Wrong, st.PrefIssued)
	}
	if st.PrefLate > st.PrefIssued {
		t.Errorf("late (%d) exceeds issued (%d)", st.PrefLate, st.PrefIssued)
	}
}

// TestHierarchyInclusionish checks that a line served from DRAM is
// subsequently present in L1, and that repeated access stays fast.
func TestHierarchyInclusionish(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	rng := xrand.New(7)
	var cycle int64
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(1<<18)) &^ 63
		r1 := h.Access(addr, false, cycle)
		cycle = r1.Done + 1
		r2 := h.Access(addr, false, cycle)
		if r2.Level != LevelL1 {
			t.Fatalf("iteration %d: immediate re-access served by %v", i, r2.Level)
		}
		cycle = r2.Done + 1
	}
}

// TestWritebackTrafficCounted: dirty evictions must reach the DRAM write
// counter under working sets that overflow the LLC.
func TestWritebackTrafficCounted(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	var cycle int64
	lines := int64(cfg.LLCSets*cfg.LLCWays) * 3
	for i := int64(0); i < lines; i++ {
		r := h.Access(uint64(i*64), true, cycle)
		cycle = r.Done + 1
	}
	h.Drain(cycle + 1_000_000)
	// Touch a second pass to force evictions of dirty lines.
	for i := int64(0); i < lines; i++ {
		r := h.Access(uint64(i*64+1<<30), true, cycle)
		cycle = r.Done + 1
	}
	h.Drain(cycle + 1_000_000)
	if h.DRAM().Writes() == 0 {
		t.Error("no writeback traffic recorded despite dirty overflow")
	}
}
