package mem

// This file implements the pending-fill priority queue as an index heap
// over a value slab with a free list. The previous implementation was a
// container/heap of *fill pointers: every miss allocated a fill on the
// Go heap, every Push/Pop boxed through interface{}, and the GC traced
// the pointer slice on every cycle. The slab version recycles fill
// storage, orders int32 indices instead of pointers, and costs zero
// allocations per fill at steady state.
//
// Ordering is load-bearing beyond "earliest first": the caches advance
// an LRU clock on every Fill, so the application order of fills with
// equal ready times changes future victim selection. The sift functions
// below therefore replicate container/heap's exact algorithms (push =
// append + siftUp; pop = swap root/last + siftDown + remove last) with
// the same strict less-than comparison, keeping the pop sequence — and
// with it every downstream experiment byte — identical to the old code.

// fill is a pending line delivery.
type fill struct {
	ready      int64
	line       uint64
	target     PrefTarget
	fromMem    bool // also fill the LLC
	isPrefetch bool
	hasEntry   bool // an MSHR entry (keyed by line) retires with this fill
}

// fillQueue is a min-heap of pending fills keyed on ready time.
type fillQueue struct {
	slab []fill
	free []int32 // recycled slab indices
	heap []int32 // heap-ordered slab indices

	// nextReady caches the root's ready time (noFillReady when empty) so
	// the hierarchy's per-access drain guard is a single comparison with
	// no dependent loads through the heap.
	nextReady int64
}

// noFillReady is nextReady's empty-queue sentinel. The zero value of
// fillQueue starts at 0, which is fine: a 0 guard fails open into the
// drain loop, which then finds the queue empty and fixes nextReady up.
const noFillReady = int64(^uint64(0) >> 1)

// len returns the number of pending fills.
func (q *fillQueue) len() int { return len(q.heap) }

// topReady returns the earliest pending ready time; call only when
// len() > 0.
func (q *fillQueue) topReady() int64 { return q.slab[q.heap[0]].ready }

// push enqueues a fill.
func (q *fillQueue) push(f fill) {
	var idx int32
	if n := len(q.free) - 1; n >= 0 {
		idx = q.free[n]
		q.free = q.free[:n]
	} else {
		idx = int32(len(q.slab))
		q.slab = append(q.slab, fill{})
	}
	q.slab[idx] = f
	q.heap = append(q.heap, idx)
	q.up(len(q.heap) - 1)
	q.nextReady = q.slab[q.heap[0]].ready
}

// pop dequeues and returns the earliest fill, releasing its slab slot.
func (q *fillQueue) pop() fill {
	n := len(q.heap) - 1
	q.heap[0], q.heap[n] = q.heap[n], q.heap[0]
	q.down(0, n)
	idx := q.heap[n]
	q.heap = q.heap[:n]
	f := q.slab[idx]
	q.free = append(q.free, idx)
	if n > 0 {
		q.nextReady = q.slab[q.heap[0]].ready
	} else {
		q.nextReady = noFillReady
	}
	return f
}

func (q *fillQueue) less(i, j int) bool {
	return q.slab[q.heap[i]].ready < q.slab[q.heap[j]].ready
}

func (q *fillQueue) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !q.less(j, i) {
			break
		}
		q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
		j = i
	}
}

func (q *fillQueue) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && q.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !q.less(j, i) {
			break
		}
		q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
		i = j
	}
}
