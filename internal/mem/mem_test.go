package mem

import (
	"testing"
	"testing/quick"
)

func TestNewCacheValidation(t *testing.T) {
	assertPanics(t, func() { NewCache("x", 3, 4) })  // non power of two
	assertPanics(t, func() { NewCache("x", 0, 4) })  // zero sets
	assertPanics(t, func() { NewCache("x", 16, 0) }) // zero ways
}

func TestCacheSizeBytes(t *testing.T) {
	if got := NewCache("L1", 64, 8).SizeBytes(); got != 32*1024 {
		t.Errorf("L1 size = %d, want 32KB", got)
	}
	if got := NewCache("LLC", 2048, 16).SizeBytes(); got != 2*1024*1024 {
		t.Errorf("LLC size = %d, want 2MB", got)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("c", 16, 2)
	if c.Lookup(100, false) {
		t.Fatal("hit on empty cache")
	}
	c.Fill(100, false, false)
	if !c.Lookup(100, false) {
		t.Fatal("miss after fill")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("c", 1, 2) // single set, 2 ways
	c.Fill(1, false, false)
	c.Fill(2, false, false)
	c.Lookup(1, false) // 1 is now MRU
	ev := c.Fill(3, false, false)
	if !ev.Valid || ev.LineAddr != 2 {
		t.Fatalf("evicted %+v, want line 2 (LRU)", ev)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("wrong post-eviction contents")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewCache("c", 1, 1)
	c.Fill(1, false, false)
	c.Lookup(1, true) // store marks dirty
	ev := c.Fill(2, false, false)
	if !ev.Valid || !ev.Dirty {
		t.Fatalf("dirty victim not reported: %+v", ev)
	}
	if c.Stats().DirtyEvicts != 1 {
		t.Error("dirty eviction not counted")
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := NewCache("c", 1, 2)
	c.Fill(1, true, false) // prefetched
	if c.Stats().PrefFills != 1 {
		t.Fatal("prefetch fill not counted")
	}
	c.Lookup(1, false) // first demand hit => useful
	if c.Stats().PrefUseful != 1 {
		t.Fatal("useful prefetch not counted")
	}
	c.Lookup(1, false) // second hit must not double count
	if c.Stats().PrefUseful != 1 {
		t.Fatal("useful prefetch double counted")
	}
	// An untouched prefetched line evicted counts as wrong.
	c.Fill(2, true, false)
	c.Fill(3, false, false)
	c.Fill(4, false, false) // evicts line 2 or 1; 1 is used, 2 is not
	c.Fill(5, false, false)
	if c.Stats().PrefUnused != 1 {
		t.Errorf("PrefUnused = %d, want 1", c.Stats().PrefUnused)
	}
}

func TestCacheRefillRefreshes(t *testing.T) {
	c := NewCache("c", 1, 2)
	c.Fill(1, true, false)
	// Demand fill of the same line counts as a use, not a duplicate.
	c.Fill(1, false, false)
	if got := c.Stats().PrefUseful; got != 1 {
		t.Errorf("PrefUseful = %d after demand refill", got)
	}
	if got := c.Stats().Fills; got != 1 {
		t.Errorf("Fills = %d; refill must not duplicate", got)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("c", 4, 2)
	c.Fill(1, false, false)
	c.Lookup(1, false)
	c.Reset()
	if c.Contains(1) {
		t.Error("contents survived Reset")
	}
	if c.Stats() != (CacheStats{}) {
		t.Error("stats survived Reset")
	}
}

func TestDRAMBandwidthQueueing(t *testing.T) {
	// 2400 MTPS at 4 GHz: one line every ~13.3 cycles.
	d := NewDRAM(2400, 4, 160)
	if p := d.LinePeriodCycles(); p < 13 || p > 14 {
		t.Fatalf("line period = %v, want ~13.3", p)
	}
	// Back-to-back requests at the same cycle serialize.
	first := d.Read(0)
	second := d.Read(0)
	if second <= first {
		t.Errorf("no serialization: %d then %d", first, second)
	}
	if d.Queued() != 1 {
		t.Errorf("queued = %d, want 1", d.Queued())
	}
	// Spaced requests do not queue.
	d.Reset()
	a := d.Read(0)
	b := d.Read(1000)
	if b-1000 != a-0 {
		t.Errorf("spaced requests got different latencies: %d vs %d", a, b-1000)
	}
	if d.Queued() != 0 {
		t.Error("spaced requests queued")
	}
}

func TestDRAMLowBandwidthHurts(t *testing.T) {
	fast := NewDRAM(2400, 4, 160)
	slow := NewDRAM(150, 4, 160)
	var fastDone, slowDone int64
	for i := 0; i < 100; i++ {
		fastDone = fast.Read(int64(i))
		slowDone = slow.Read(int64(i))
	}
	if slowDone < 4*fastDone {
		t.Errorf("150 MTPS (%d) should be >4x slower than 2400 MTPS (%d) under load",
			slowDone, fastDone)
	}
}

func TestDRAMUtilization(t *testing.T) {
	d := NewDRAM(2400, 4, 160)
	for i := 0; i < 10; i++ {
		d.Read(0)
	}
	u := d.Utilization(1000)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if d.Utilization(0) != 0 {
		t.Error("utilization at cycle 0 != 0")
	}
}

func TestNewDRAMPanics(t *testing.T) {
	assertPanics(t, func() { NewDRAM(0, 4, 100) })
	assertPanics(t, func() { NewDRAM(2400, 0, 100) })
}

func TestHierarchyDemandPath(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x100000)

	// Cold miss goes to memory.
	r1 := h.Access(addr, false, 0)
	if r1.Level != LevelMem || !r1.L2Access || r1.L2Hit {
		t.Fatalf("cold access = %+v", r1)
	}
	if r1.Done < 160 {
		t.Fatalf("memory access done at %d, faster than DRAM latency", r1.Done)
	}
	// After the fill arrives, the same line hits in L1.
	r2 := h.Access(addr, false, r1.Done+1)
	if r2.Level != LevelL1 {
		t.Fatalf("post-fill access served by %v", r2.Level)
	}
	st := h.Stats()
	if st.L2Demand != 1 || st.LLCMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHierarchyL2AndLLCHits(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	base := uint64(0x200000)
	// Warm the line, then evict it from tiny L1 by touching conflicting lines.
	r := h.Access(base, false, 0)
	cycle := r.Done + 1
	// L1 has 64 sets; lines base + k*64*64 all map to the same L1 set.
	for k := 1; k <= 9; k++ {
		rr := h.Access(base+uint64(k)*64*64, false, cycle)
		cycle = rr.Done + 1
	}
	got := h.Access(base, false, cycle)
	if got.Level != LevelL2 {
		t.Fatalf("expected L2 hit after L1 eviction, got %v", got.Level)
	}
	if !got.L2Hit {
		t.Error("L2Hit flag not set")
	}
}

func TestHierarchyPrefetchTimely(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x300000)
	h.Prefetch(addr, 0, PrefToL2)
	if h.Stats().PrefIssued != 1 {
		t.Fatal("prefetch not issued")
	}
	// Wait for the fill, then demand it: timely.
	h.Drain(10000)
	r := h.Access(addr, false, 10000)
	if r.Level != LevelL2 {
		t.Fatalf("prefetched line served by %v, want L2", r.Level)
	}
	cl := h.Classify()
	if cl.Timely != 1 || cl.Late != 0 || cl.Wrong != 0 {
		t.Errorf("classification = %+v", cl)
	}
}

func TestHierarchyPrefetchLate(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x400000)
	h.Prefetch(addr, 0, PrefToL2)
	// Demand arrives immediately, before the line lands: late.
	r := h.Access(addr, false, 1)
	if r.Level != LevelMem {
		t.Fatalf("late-prefetch demand served by %v", r.Level)
	}
	cl := h.Classify()
	if cl.Late != 1 {
		t.Errorf("classification = %+v, want Late=1", cl)
	}
	// The eventual fill must not be counted wrong after eviction pressure.
	h.Drain(100000)
	if got := h.Classify().Wrong; got != 0 {
		t.Errorf("late prefetch misclassified as wrong: %d", got)
	}
}

func TestHierarchyPrefetchRedundantDropped(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x500000)
	r := h.Access(addr, false, 0)
	h.Drain(r.Done + 1)
	h.Prefetch(addr, r.Done+1, PrefToL2)
	if h.Stats().PrefIssued != 0 {
		t.Error("redundant prefetch issued")
	}
	if h.L2().Stats().PrefRedundant != 1 {
		t.Error("redundant prefetch not counted")
	}
	// In-flight duplicate also dropped.
	h.Prefetch(0x600000, r.Done+2, PrefToL2)
	h.Prefetch(0x600000, r.Done+3, PrefToL2)
	if h.Stats().PrefIssued != 1 {
		t.Errorf("PrefIssued = %d, want 1", h.Stats().PrefIssued)
	}
}

func TestHierarchyPrefetchWrong(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Sets, cfg.L2Ways = 1, 2 // tiny L2 to force evictions
	h := NewHierarchy(cfg)
	h.Prefetch(0x10000, 0, PrefToL2)
	h.Drain(100000)
	// Two demand misses push the prefetched line out of the 2-way set.
	r := h.Access(0x20000, false, 100000)
	h.Drain(r.Done + 1)
	r = h.Access(0x30000, false, r.Done+1)
	h.Drain(r.Done + 1)
	if got := h.Classify().Wrong; got != 1 {
		t.Errorf("Wrong = %d, want 1", got)
	}
}

func TestHierarchyMSHRPrefetchDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefMSHRs = 2
	h := NewHierarchy(cfg)
	h.Prefetch(0x1_0000, 0, PrefToL2)
	h.Prefetch(0x2_0000, 0, PrefToL2)
	h.Prefetch(0x3_0000, 0, PrefToL2) // prefetch queue full: dropped
	st := h.Stats()
	if st.PrefDropped != 1 || st.PrefIssued != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHierarchyPrefetchToL1(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x700000)
	h.Prefetch(addr, 0, PrefToL1)
	h.Drain(100000)
	r := h.Access(addr, false, 100000)
	if r.Level != LevelL1 {
		t.Fatalf("L1 prefetch landed at %v", r.Level)
	}
	if got := h.Classify().Timely; got != 1 {
		t.Errorf("Timely = %d", got)
	}
}

func TestSharedLLCContention(t *testing.T) {
	cfg := DefaultConfig()
	shared := NewShared(cfg, 2)
	h0 := NewCoreHierarchy(cfg, shared)
	h1 := NewCoreHierarchy(cfg, shared)
	// Core 0 warms a line into the shared LLC (and its private caches).
	r := h0.Access(0x800000, false, 0)
	h0.Drain(r.Done + 1)
	// Core 1's private caches miss but the shared LLC hits.
	got := h1.Access(0x800000, false, r.Done+1)
	if got.Level != LevelLLC {
		t.Fatalf("cross-core access served by %v, want LLC", got.Level)
	}
}

func TestNewSharedPanicsOnBadCores(t *testing.T) {
	assertPanics(t, func() { NewShared(DefaultConfig(), 3) })
	assertPanics(t, func() { NewShared(DefaultConfig(), 0) })
}

func TestLevelString(t *testing.T) {
	for l, s := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelLLC: "LLC", LevelMem: "MEM", Level(9): "level(9)"} {
		if l.String() != s {
			t.Errorf("Level(%d) = %q", l, l.String())
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if NewCache("L2", cfg.L2Sets, cfg.L2Ways).SizeBytes() != 256*1024 {
		t.Error("default L2 is not 256KB")
	}
	alt := AltCacheConfig()
	if NewCache("L2", alt.L2Sets, alt.L2Ways).SizeBytes() != 1024*1024 {
		t.Error("alt L2 is not 1MB")
	}
	if NewCache("LLC", alt.LLCSets, alt.LLCWays).SizeBytes() != 1536*1024 {
		t.Error("alt LLC is not 1.5MB")
	}
}

// Property: a cache never reports more hits+misses than lookups, and
// lookups after a fill of the same line always hit until eviction.
func TestQuickCacheConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache("q", 8, 2)
		present := map[uint64]bool{}
		for _, op := range ops {
			line := uint64(op % 64)
			if op%3 == 0 {
				ev := c.Fill(line, false, false)
				present[line] = true
				if ev.Valid {
					delete(present, ev.LineAddr)
				}
			} else {
				hit := c.Lookup(line, false)
				if present[line] && !hit {
					return false // present lines must hit
				}
				if hit && !present[line] {
					return false // absent lines must miss
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DRAM completions are monotone for monotone request times.
func TestQuickDRAMMonotone(t *testing.T) {
	f := func(gaps []uint8) bool {
		d := NewDRAM(600, 4, 160)
		var cycle, prev int64
		for _, g := range gaps {
			cycle += int64(g)
			done := d.Read(cycle)
			if done < prev {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestHierarchyPrefetchToLLC(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x900000)
	h.Prefetch(addr, 0, PrefToLLC)
	if h.Stats().PrefIssued != 1 {
		t.Fatal("LLC prefetch not issued")
	}
	h.Drain(1 << 30)
	// The line must be in the LLC but not in L2 (no pollution).
	if h.L2().Contains(LineAddr(addr)) {
		t.Error("LLC-only prefetch polluted the L2")
	}
	if !h.LLC().Contains(LineAddr(addr)) {
		t.Error("LLC-only prefetch missing from LLC")
	}
	// Demand access is served from the LLC and counts as timely.
	r := h.Access(addr, false, 1<<30)
	if r.Level != LevelLLC {
		t.Fatalf("served by %v, want LLC", r.Level)
	}
	if got := h.Classify().Timely; got != 1 {
		t.Errorf("Timely = %d, want 1", got)
	}
	// A second LLC-targeted prefetch of a cached line is redundant.
	h.Prefetch(addr, 1<<30+100, PrefToLLC)
	if h.Stats().PrefIssued != 1 {
		t.Error("redundant LLC prefetch issued")
	}
}
