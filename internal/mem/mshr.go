package mem

// This file implements the MSHR file as a small open-addressed hash
// table of value entries. Real MSHR files hold a few dozen lines
// (Table 4: 10 demand + 32 prefetch), so the general-purpose Go map the
// hierarchy used to carry was overkill: every probe hashed through the
// runtime, every miss allocated an entry, and the full-MSHR stall scan
// paid the runtime's iterator machinery. The table below keeps entries
// inline in a power-of-two slot array with linear probing and
// backward-shift deletion, so the steady-state per-miss cost is a
// multiply, a mask, and a couple of cache lines — and zero allocations.

// mshrEntry tracks one in-flight line miss. valid marks slot occupancy
// in the open-addressed table.
type mshrEntry struct {
	line       uint64
	ready      int64
	isPrefetch bool
	demanded   bool // a demand access arrived while in flight
	dirty      bool // a store demanded the line: fill dirty
	valid      bool
}

// mshrTable is the open-addressed MSHR file. Capacity stays at least
// twice the live entry bound, so probe chains are short and the table
// never fills.
type mshrTable struct {
	slots []mshrEntry
	shift uint // 64 - log2(len(slots)); used by the multiplicative hash
	n     int
}

// newMSHRTable sizes the table for at most bound live entries.
func newMSHRTable(bound int) mshrTable {
	capacity := 16
	for capacity < 2*bound {
		capacity *= 2
	}
	return mshrTable{slots: make([]mshrEntry, capacity), shift: slotShift(capacity)}
}

func slotShift(capacity int) uint {
	shift := uint(64)
	for c := capacity; c > 1; c /= 2 {
		shift--
	}
	return shift
}

// home is the entry's preferred slot: a Fibonacci multiplicative hash,
// taking the high bits so nearby line addresses scatter.
func (t *mshrTable) home(line uint64) int {
	return int((line * 0x9e3779b97f4a7c15) >> t.shift)
}

// len returns the live entry count.
func (t *mshrTable) len() int { return t.n }

// get returns the entry for line, or nil. The pointer aims into the
// slot array and is invalidated by the next put or remove.
func (t *mshrTable) get(line uint64) *mshrEntry {
	i := t.home(line)
	for {
		e := &t.slots[i]
		if !e.valid {
			return nil
		}
		if e.line == line {
			return e
		}
		i++
		if i == len(t.slots) {
			i = 0
		}
	}
}

// put inserts a fresh entry for line — the caller has already checked
// the line is absent — and returns a pointer for initialization, valid
// until the next put or remove.
func (t *mshrTable) put(line uint64) *mshrEntry {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	i := t.home(line)
	for t.slots[i].valid {
		i++
		if i == len(t.slots) {
			i = 0
		}
	}
	t.n++
	e := &t.slots[i]
	*e = mshrEntry{line: line, valid: true}
	return e
}

// remove deletes and returns the entry for line. Deletion backward-shifts
// the probe chain so no tombstones accumulate: any entry whose home slot
// no longer reaches it across the gap moves into the gap, repeatedly,
// until the chain is tight again.
func (t *mshrTable) remove(line uint64) (mshrEntry, bool) {
	i := t.home(line)
	for {
		if !t.slots[i].valid {
			return mshrEntry{}, false
		}
		if t.slots[i].line == line {
			break
		}
		i++
		if i == len(t.slots) {
			i = 0
		}
	}
	out := t.slots[i]
	t.n--
	j := i // the gap
	for {
		t.slots[j] = mshrEntry{}
		k := j
		for {
			k++
			if k == len(t.slots) {
				k = 0
			}
			if !t.slots[k].valid {
				return out, true
			}
			h := t.home(t.slots[k].line)
			// The entry at k may move into the gap at j only if its home
			// is not cyclically within (j, k] — otherwise the move would
			// put it before its home and lookups would miss it.
			if (j < k && (h <= j || h > k)) || (j > k && h <= j && h > k) {
				t.slots[j] = t.slots[k]
				j = k
				break
			}
		}
	}
}

// grow doubles the slot array and rehashes. It only runs while the live
// count approaches half capacity, which the hierarchy's MSHR bounds
// prevent after construction — this is a safety valve, not a code path.
func (t *mshrTable) grow() {
	old := t.slots
	capacity := 2 * len(old)
	t.slots = make([]mshrEntry, capacity)
	t.shift = slotShift(capacity)
	t.n = 0
	for i := range old {
		if old[i].valid {
			e := t.put(old[i].line)
			*e = old[i]
		}
	}
}
