package mem

import (
	"testing"

	"microbandit/internal/xrand"
)

// The benchmarks below pin the simulator's per-access costs: Cache
// lookup/fill and the full Hierarchy demand path are the inner loop of
// every experiment, so CI runs them (with allocation reporting) to
// catch hot-path regressions.

func BenchmarkCacheLookup(b *testing.B) {
	c := NewCache("L2", 512, 8)
	rng := xrand.New(1)
	for i := 0; i < 4096; i++ {
		c.Fill(uint64(rng.Intn(1<<16)), false, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i)&0xffff, false)
	}
}

func BenchmarkCacheFill(b *testing.B) {
	c := NewCache("L2", 512, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)&0xffff, false, i&1 == 0)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	rng := xrand.New(1)
	cycle := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := h.Access(uint64(rng.Intn(1<<20))*64, i&7 == 0, cycle)
		cycle = res.Done
	}
}

// TestCacheZeroAlloc pins the zero-allocation property of the cache hot
// path: neither lookups nor fills may allocate once the cache exists.
func TestCacheZeroAlloc(t *testing.T) {
	c := NewCache("L2", 512, 8)
	i := uint64(0)
	if n := testing.AllocsPerRun(100, func() {
		for k := 0; k < 100; k++ {
			c.Fill(i&0xffff, false, false)
			c.Lookup(i&0xffff, false)
			c.Lookup((i+1)&0xffff, true)
			i++
		}
	}); n != 0 {
		t.Fatalf("cache lookup/fill allocates %.1f times per run, want 0", n)
	}
}

// TestHierarchyAccessZeroAlloc pins the steady-state zero-allocation
// property of the full demand path (MSHR table, fill queue, and demand
// side list all reuse their high-water capacity after warmup).
func TestHierarchyAccessZeroAlloc(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	rng := xrand.New(7)
	cycle := int64(0)
	step := func() {
		res := h.Access(uint64(rng.Intn(1<<20))*64, false, cycle)
		cycle = res.Done
	}
	for i := 0; i < 50_000; i++ { // warmup: reach capacity high-water marks
		step()
	}
	if n := testing.AllocsPerRun(100, func() {
		for k := 0; k < 100; k++ {
			step()
		}
	}); n != 0 {
		t.Fatalf("Hierarchy.Access allocates %.1f times per run, want 0", n)
	}
}
