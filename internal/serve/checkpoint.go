package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"microbandit/internal/core"
	"microbandit/internal/fault"
)

// CheckpointVersion is the checkpoint file schema version this build
// writes. Version 2 adds slab records — same-algorithm agent sessions
// stored as parallel arrays instead of one JSON object each — and still
// reads version 1 files unchanged.
const CheckpointVersion = 2

// checkpointVersionV1 is the PR 4 per-session-object format, accepted
// on read forever.
const checkpointVersionV1 = 1

// Session kinds in a checkpoint record.
const (
	ckptAgent = "agent"
	ckptMeta  = "meta"
	ckptFixed = "fixed"
	ckptCtx   = "ctx"
)

// sessionCheckpoint is one serialized session: its spec, sequencing
// state, and the agent snapshot. The agent payload is kept raw so the
// envelope decodes without knowing the kind up front.
type sessionCheckpoint struct {
	ID       string          `json:"id"`
	Spec     Spec            `json:"spec"`
	Seq      uint64          `json:"seq"`
	Open     bool            `json:"open,omitempty"`
	Arm      int             `json:"arm,omitempty"`
	Kind     string          `json:"kind"`
	Agent    json.RawMessage `json:"agent,omitempty"`
	FixedArm int             `json:"fixed_arm,omitempty"`
}

// slabCheckpoint stores every (algo, arms)-alike agent session in column
// form: entry i of each array is one session, and the learned tables
// concatenate into two flat arrays (row i = R[i*arms:(i+1)*arms]). A
// 10k-session checkpoint is two long float arrays instead of 10k JSON
// objects repeating the same policy block. Only sessions whose policy is
// a pure function of the spec qualify (ducb/ucb/eps: stateless policies,
// paper-registry hyperparameters, round-robin queue in tail-invariant
// form); anything else falls back to a sessionCheckpoint record.
type slabCheckpoint struct {
	Algo string `json:"algo"`
	Arms int    `json:"arms"`

	IDs      []string `json:"ids"`
	Specs    []Spec   `json:"specs"`
	Seqs     []uint64 `json:"seqs"`
	Opens    []bool   `json:"opens"`
	OpenArms []int    `json:"open_arms"`

	R           []float64   `json:"rtable"`
	N           []float64   `json:"ntable"`
	NTotals     []float64   `json:"ntotals"`
	Steps       []int       `json:"steps"`
	CurrentArms []int       `json:"current_arms"`
	InSteps     []bool      `json:"in_steps"`
	ForcedLens  []int       `json:"forced_lens"` // round-robin tail length; arm j of k is arms-k+j
	RAvgs       []float64   `json:"ravgs"`
	Normalizeds []bool      `json:"normalizeds"`
	Restarts    []int       `json:"restarts"`
	RNGs        [][4]uint64 `json:"rngs"`
}

// checkpointFile is the on-disk layout. Sessions and slab groups are
// sorted (by id and by group key), so a quiesced server checkpoints to
// identical bytes every time.
type checkpointFile struct {
	V        int                 `json:"v"`
	NextID   uint64              `json:"next_id"`
	Sessions []sessionCheckpoint `json:"sessions"`
	Slabs    []slabCheckpoint    `json:"slabs,omitempty"`
}

// slabAlgos are the algorithm names whose policies carry no mode state,
// making their sessions eligible for slab records.
var slabAlgos = map[string]bool{"ducb": true, "ucb": true, "eps": true}

// statelessPolicyEq reports whether two policy snapshots describe the
// same stateless policy (no Periodic/Single mode state on either side).
func statelessPolicyEq(a, b core.PolicySnapshot) bool {
	return a.Kind == b.Kind && a.Epsilon == b.Epsilon && a.C == b.C &&
		a.Gamma == b.Gamma && a.Sigma == b.Sigma && a.Arm == b.Arm &&
		a.Chosen == b.Chosen && a.SweepIdx == b.SweepIdx &&
		a.ExploitLeft == b.ExploitLeft && a.ExploitArm == b.ExploitArm &&
		!a.SweepPrimed && !b.SweepPrimed && len(a.Avg) == 0 && len(b.Avg) == 0
}

// slabRecordable reports whether an agent session can be stored as a
// slab entry: every config field must be re-derivable from the spec
// through the algorithm registry, and the forced queue must be the
// round-robin tail the ForcedLens encoding assumes. The checks are
// belt-and-braces — sessions built by this package always qualify — but
// a session restored from a hand-edited v1 file might not, and falling
// back to a full record is always correct.
func slabRecordable(spec Spec, snap *core.AgentSnapshot) bool {
	if len(spec.MetaPairs) != 0 || !slabAlgos[spec.Algo] {
		return false
	}
	want, err := core.AlgoPolicySnapshot(spec.Algo)
	if err != nil || !statelessPolicyEq(want, snap.Policy) {
		return false
	}
	if !snap.Normalize || snap.RRRestartProb != 0 || snap.RecordTrace || snap.HardwarePrecision {
		return false
	}
	if snap.Seed != spec.Seed || snap.Arms != spec.Arms || len(snap.Trace) != 0 {
		return false
	}
	k := len(snap.Forced)
	if k > snap.Arms {
		return false
	}
	for j, f := range snap.Forced {
		if f != snap.Arms-k+j {
			return false
		}
	}
	return true
}

// validate checks a decoded slab group's structural consistency.
func (g *slabCheckpoint) validate() error {
	if g.Arms < 1 || g.Arms > MaxArms {
		return fmt.Errorf("slab group %q: arms %d outside [1, %d]", g.Algo, g.Arms, MaxArms)
	}
	n := len(g.IDs)
	// Columns are checked in a fixed order so a multi-column corruption
	// always reports the same (first) mismatching column.
	cols := []struct {
		name string
		len  int
	}{
		{"specs", len(g.Specs)}, {"seqs", len(g.Seqs)}, {"opens", len(g.Opens)},
		{"open_arms", len(g.OpenArms)}, {"ntotals", len(g.NTotals)},
		{"steps", len(g.Steps)}, {"current_arms", len(g.CurrentArms)},
		{"in_steps", len(g.InSteps)}, {"forced_lens", len(g.ForcedLens)},
		{"ravgs", len(g.RAvgs)}, {"normalizeds", len(g.Normalizeds)},
		{"restarts", len(g.Restarts)}, {"rngs", len(g.RNGs)},
	}
	for _, c := range cols {
		if c.len != n {
			return fmt.Errorf("slab group %q/%d: %d ids but %d %s", g.Algo, g.Arms, n, c.len, c.name)
		}
	}
	if len(g.R) != n*g.Arms || len(g.N) != n*g.Arms {
		return fmt.Errorf("slab group %q/%d: tables hold %d/%d values, want %d", g.Algo, g.Arms, len(g.R), len(g.N), n*g.Arms)
	}
	return nil
}

// checkpointSession captures one session under its lock. For agent
// sessions the snapshot is returned unmarshaled so the caller can route
// it into a slab group; for every other kind ck arrives fully encoded.
//
// Server-side fault wrappers (Spec.Faults) are intentionally not part of
// the snapshot: they are rebuilt from the spec on restore, so their
// private random streams restart. Fault-free sessions replay
// deterministically across a restore; chaos-injected sessions resume with
// a fresh fault stream.
func checkpointSession(s *Session) (ck sessionCheckpoint, agentSnap *core.AgentSnapshot, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck = sessionCheckpoint{
		ID: s.id, Spec: s.spec, Seq: s.seq, Open: s.open, Arm: s.arm,
	}
	switch a := s.agent.(type) {
	case *core.Agent:
		snap, err := a.Snapshot()
		if err != nil {
			return ck, nil, fmt.Errorf("session %s: %w", s.id, err)
		}
		ck.Kind = ckptAgent
		return ck, snap, nil
	case *core.MetaAgent:
		snap, err := a.Snapshot()
		if err != nil {
			return ck, nil, fmt.Errorf("session %s: %w", s.id, err)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			return ck, nil, fmt.Errorf("session %s: %w", s.id, err)
		}
		ck.Kind, ck.Agent = ckptMeta, data
	case *core.ContextualAgent:
		snap, err := a.Snapshot()
		if err != nil {
			return ck, nil, fmt.Errorf("session %s: %w", s.id, err)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			return ck, nil, fmt.Errorf("session %s: %w", s.id, err)
		}
		ck.Kind, ck.Agent = ckptCtx, data
	case core.FixedArm:
		ck.Kind, ck.FixedArm = ckptFixed, int(a)
	default:
		return ck, nil, fmt.Errorf("session %s: controller %T is not checkpointable", s.id, s.agent)
	}
	return ck, nil, nil
}

// slabGroupKey orders slab groups deterministically in the file.
func slabGroupKey(algo string, arms int) string {
	return fmt.Sprintf("%s/%06d", algo, arms)
}

// appendSlabEntry adds one captured agent session to its slab group.
func appendSlabEntry(g *slabCheckpoint, ck *sessionCheckpoint, snap *core.AgentSnapshot) {
	g.IDs = append(g.IDs, ck.ID)
	g.Specs = append(g.Specs, ck.Spec)
	g.Seqs = append(g.Seqs, ck.Seq)
	g.Opens = append(g.Opens, ck.Open)
	g.OpenArms = append(g.OpenArms, ck.Arm)
	g.R = append(g.R, snap.R...)
	g.N = append(g.N, snap.N...)
	g.NTotals = append(g.NTotals, snap.NTotal)
	g.Steps = append(g.Steps, snap.Steps)
	g.CurrentArms = append(g.CurrentArms, snap.CurrentArm)
	g.InSteps = append(g.InSteps, snap.InStep)
	g.ForcedLens = append(g.ForcedLens, len(snap.Forced))
	g.RAvgs = append(g.RAvgs, snap.RAvg)
	g.Normalizeds = append(g.Normalizeds, snap.Normalized)
	g.Restarts = append(g.Restarts, snap.Restarts)
	g.RNGs = append(g.RNGs, snap.RNG)
}

// restoreSession rebuilds a session from its checkpoint record and
// registers it in st. The agent resumes its exact snapshot state — agent
// sessions restore into their shard's slab arena, so a restored server
// is as batch-kernel-eligible as a freshly built one. The drive-path
// fault wrapper (when the spec arms one) is rebuilt fresh from the spec.
func (st *Store) restoreSession(ck sessionCheckpoint) error {
	if ck.ID == "" {
		return &CheckpointError{Reason: "session record without an id"}
	}
	spec := ck.Spec
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
	}
	if ck.Open && (ck.Arm < 0 || ck.Arm >= spec.Arms) {
		return &CheckpointError{Reason: fmt.Sprintf("session %s: open arm %d outside [0,%d)", ck.ID, ck.Arm, spec.Arms)}
	}
	set, err := fault.ParseSet(spec.Faults)
	if err != nil {
		return &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
	}

	sh := st.shardFor(ck.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[ck.ID]; ok {
		return &CheckpointError{Reason: fmt.Sprintf("duplicate session id %q", ck.ID)}
	}

	var agent core.Controller
	var chunk *arenaChunk
	var slot int
	switch ck.Kind {
	case ckptAgent:
		var snap core.AgentSnapshot
		if err := json.Unmarshal(ck.Agent, &snap); err != nil {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: decode agent: %v", ck.ID, err)}
		}
		if snap.Arms < 1 || snap.Arms > MaxArms {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: agent arms %d outside [1, %d]", ck.ID, snap.Arms, MaxArms)}
		}
		// The agent's shape must agree with the spec the session claims:
		// a skewed record would otherwise restore an agent the protocol
		// layer believes has spec.Arms arms, and the next step or reward
		// would corrupt or panic instead of erroring here.
		if snap.Arms != spec.Arms {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: agent arms %d != spec arms %d", ck.ID, snap.Arms, spec.Arms)}
		}
		if snap.InStep != ck.Open {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: agent in_step %v disagrees with session open %v", ck.ID, snap.InStep, ck.Open)}
		}
		chunk = st.lockedChunkFor(sh, snap.Arms)
		a, sl, err := core.RestoreAgentIn(chunk.slab, &snap)
		if err != nil {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
		}
		agent, slot = a, sl
	case ckptMeta:
		m, err := core.RestoreMetaAgentJSON(ck.Agent)
		if err != nil {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
		}
		if m.Arms() != spec.Arms {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: meta agent arms %d != spec arms %d", ck.ID, m.Arms(), spec.Arms)}
		}
		if m.StepOpen() != ck.Open {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: meta agent in_step %v disagrees with session open %v", ck.ID, m.StepOpen(), ck.Open)}
		}
		agent = m
	case ckptCtx:
		c, err := core.RestoreContextualAgentJSON(ck.Agent)
		if err != nil {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
		}
		base, ok := core.ContextualBase(spec.Algo)
		if !ok {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: spec algo %q is not contextual", ck.ID, spec.Algo)}
		}
		snap := struct {
			Arms int    `json:"arms"`
			Algo string `json:"algo"`
		}{}
		if err := json.Unmarshal(ck.Agent, &snap); err != nil {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: decode contextual agent: %v", ck.ID, err)}
		}
		if snap.Arms != spec.Arms {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: contextual agent arms %d != spec arms %d", ck.ID, snap.Arms, spec.Arms)}
		}
		if snap.Algo != base {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: contextual base %q != spec algo %q (base %q)", ck.ID, snap.Algo, spec.Algo, base)}
		}
		if c.StepOpen() != ck.Open {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: contextual agent in_step %v disagrees with session open %v", ck.ID, c.StepOpen(), ck.Open)}
		}
		agent = c
	case ckptFixed:
		if ck.FixedArm < 0 || ck.FixedArm >= spec.Arms {
			return &CheckpointError{Reason: fmt.Sprintf("session %s: fixed arm %d outside [0,%d)", ck.ID, ck.FixedArm, spec.Arms)}
		}
		agent = core.FixedArm(ck.FixedArm)
	default:
		return &CheckpointError{Reason: fmt.Sprintf("session %s: unknown kind %q", ck.ID, ck.Kind)}
	}

	drive := fault.Controller(agent, set, spec.Seed)
	s := &Session{
		id: ck.ID, spec: spec, agent: agent, drive: drive,
		seq: ck.Seq, open: ck.Open, arm: ck.Arm,
	}
	if chunk != nil {
		s.slab, s.slot, s.slabOrd = chunk.slab, slot, chunk.ord
		s.kernelOK = drive == agent
	}
	sh.m[ck.ID] = s
	return nil
}

// Record key prefixes: slab column groups ship as "g/<algo>/<arms>"
// records, per-session fallbacks as "s/<id>".
const (
	recPrefixGroup   = "g/"
	recPrefixSession = "s/"
)

// CheckpointRecord is one independently shippable unit of a checkpoint:
// a slab column group or a single non-slab session. The replication
// plane hashes record bodies and ships only the records that changed
// since the replica's last acknowledged generation — a slab group whose
// sessions saw no traffic costs nothing to re-replicate.
type CheckpointRecord struct {
	Key  string          `json:"key"`
	Body json.RawMessage `json:"body"`
}

// CheckpointRecords captures every live session as a sorted record list
// plus the store's id counter. AssembleCheckpoint rebuilds the exact
// Checkpoint() byte stream from them; the pair exists so a replication
// sender can diff records across generations instead of re-shipping the
// whole file.
func (st *Store) CheckpointRecords() (nextID uint64, recs []CheckpointRecord, err error) {
	nextID = st.nextID.Load()
	groups := make(map[string]*slabCheckpoint)
	for _, id := range st.IDs() {
		s, ok := st.Get(id)
		if !ok {
			continue // deleted between IDs() and now
		}
		ck, snap, err := checkpointSession(s)
		if err != nil {
			return 0, nil, err
		}
		if snap != nil && slabRecordable(ck.Spec, snap) {
			key := slabGroupKey(ck.Spec.Algo, snap.Arms)
			g := groups[key]
			if g == nil {
				g = &slabCheckpoint{Algo: ck.Spec.Algo, Arms: snap.Arms}
				groups[key] = g
			}
			appendSlabEntry(g, &ck, snap)
			continue
		}
		if snap != nil {
			data, err := json.Marshal(snap)
			if err != nil {
				return 0, nil, fmt.Errorf("session %s: %w", ck.ID, err)
			}
			ck.Agent = data
		}
		body, err := json.Marshal(ck)
		if err != nil {
			return 0, nil, fmt.Errorf("session %s: %w", ck.ID, err)
		}
		recs = append(recs, CheckpointRecord{Key: recPrefixSession + ck.ID, Body: body})
	}
	for key, g := range groups {
		body, err := json.Marshal(g)
		if err != nil {
			return 0, nil, fmt.Errorf("slab group %s: %w", key, err)
		}
		recs = append(recs, CheckpointRecord{Key: recPrefixGroup + key, Body: body})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return nextID, recs, nil
}

// rawCheckpointFile mirrors checkpointFile with pre-encoded members, so
// AssembleCheckpoint splices record bodies without re-marshaling them.
type rawCheckpointFile struct {
	V        int               `json:"v"`
	NextID   uint64            `json:"next_id"`
	Sessions []json.RawMessage `json:"sessions"`
	Slabs    []json.RawMessage `json:"slabs,omitempty"`
}

// AssembleCheckpoint rebuilds a version-2 checkpoint byte stream from a
// record list. Records may arrive in any order; the output is sorted by
// key, which is exactly Checkpoint()'s ordering — same records in, same
// bytes out, no matter which generations the records arrived in.
func AssembleCheckpoint(nextID uint64, recs []CheckpointRecord) ([]byte, error) {
	sorted := make([]CheckpointRecord, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	file := rawCheckpointFile{V: CheckpointVersion, NextID: nextID}
	for i, r := range sorted {
		if i > 0 && sorted[i-1].Key == r.Key {
			return nil, &CheckpointError{Reason: fmt.Sprintf("duplicate record key %q", r.Key)}
		}
		switch {
		case strings.HasPrefix(r.Key, recPrefixSession):
			file.Sessions = append(file.Sessions, r.Body)
		case strings.HasPrefix(r.Key, recPrefixGroup):
			file.Slabs = append(file.Slabs, r.Body)
		default:
			return nil, &CheckpointError{Reason: fmt.Sprintf("unknown record key %q", r.Key)}
		}
	}
	return json.Marshal(file)
}

// Checkpoint serializes every live session, sorted by id. Sessions are
// locked one at a time, so traffic on other sessions proceeds during a
// checkpoint. Agent sessions that pass slabRecordable land in column
// slab groups; everything else keeps the per-session record format.
func (st *Store) Checkpoint() ([]byte, error) {
	nextID, recs, err := st.CheckpointRecords()
	if err != nil {
		return nil, err
	}
	return AssembleCheckpoint(nextID, recs)
}

// WriteCheckpoint atomically persists the store to path: the file is
// fully written and fsynced under a temporary name in the same
// directory, then renamed over the target, so a crash mid-write never
// leaves a truncated checkpoint behind.
func (st *Store) WriteCheckpoint(path string) error {
	data, err := st.Checkpoint()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// decodeError wraps a json decode failure in a CheckpointError carrying
// the byte offset the decoder stopped at, when the error kind has one.
// Truncated files surface as an unexpected-end-of-input at the cut;
// bit flips inside tokens surface at the damaged byte.
func decodeError(err error) *CheckpointError {
	ce := &CheckpointError{Reason: fmt.Sprintf("decode: %v", err)}
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		ce.Offset = syn.Offset
	case errors.As(err, &typ):
		ce.Offset = typ.Offset
	}
	return ce
}

// RestoreSessions merges checkpoint bytes into a live store: every
// session in the file is rebuilt exactly as RestoreCheckpoint would,
// alongside whatever the store already serves. A promoted replica uses
// this to absorb its dead predecessor's sessions without interrupting
// its own. Duplicate ids (in the file, or already live) are errors; the
// id counter ratchets to the file's so future Create calls cannot mint
// a restored session's id.
func (st *Store) RestoreSessions(data []byte) error {
	var file checkpointFile
	if err := json.Unmarshal(data, &file); err != nil {
		return decodeError(err)
	}
	if file.V != checkpointVersionV1 && file.V != CheckpointVersion {
		return &CheckpointError{Reason: fmt.Sprintf("version %d (this build reads versions %d and %d)", file.V, checkpointVersionV1, CheckpointVersion)}
	}
	for {
		cur := st.nextID.Load()
		if file.NextID <= cur || st.nextID.CompareAndSwap(cur, file.NextID) {
			break
		}
	}
	for _, ck := range file.Sessions {
		if err := st.restoreSession(ck); err != nil {
			return err
		}
	}
	for gi := range file.Slabs {
		g := &file.Slabs[gi]
		if err := g.validate(); err != nil {
			return &CheckpointError{Reason: err.Error()}
		}
		for i := range g.IDs {
			if err := st.restoreSlabSession(g, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// RestoreCheckpoint rebuilds a store from checkpoint bytes. Every error
// path returns a typed *CheckpointError (or core's typed snapshot
// errors wrapped in one) — decode failures name the byte offset of the
// damage — and it never panics on hostile input.
func RestoreCheckpoint(data []byte, shards int) (*Store, error) {
	st := NewStore(shards)
	if err := st.RestoreSessions(data); err != nil {
		return nil, err
	}
	return st, nil
}

// restoreSlabSession rebuilds entry i of a slab group. The column entry
// is expanded into the same AgentSnapshot a v1 record would have carried
// — the policy block comes from the algorithm registry, the round-robin
// queue from its tail length — and then restores through the exact path
// per-session records use, so the two formats cannot drift apart.
func (st *Store) restoreSlabSession(g *slabCheckpoint, i int) error {
	id := g.IDs[i]
	where := fmt.Sprintf("slab group %s/%d entry %d (%s)", g.Algo, g.Arms, i, id)
	if id == "" {
		return &CheckpointError{Reason: where + ": empty session id"}
	}
	spec := g.Specs[i]
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return &CheckpointError{Reason: fmt.Sprintf("%s: %v", where, err)}
	}
	if spec.Algo != g.Algo || !slabAlgos[spec.Algo] || len(spec.MetaPairs) != 0 {
		return &CheckpointError{Reason: fmt.Sprintf("%s: spec algo %q does not belong in this group", where, spec.Algo)}
	}
	if spec.Arms != g.Arms {
		return &CheckpointError{Reason: fmt.Sprintf("%s: spec arms %d != group arms %d", where, spec.Arms, g.Arms)}
	}
	open, arm := g.Opens[i], g.OpenArms[i]
	if open && (arm < 0 || arm >= spec.Arms) {
		return &CheckpointError{Reason: fmt.Sprintf("%s: open arm %d outside [0,%d)", where, arm, spec.Arms)}
	}
	if g.InSteps[i] != open {
		return &CheckpointError{Reason: fmt.Sprintf("%s: in_steps %v disagrees with opens %v", where, g.InSteps[i], open)}
	}
	set, err := fault.ParseSet(spec.Faults)
	if err != nil {
		return &CheckpointError{Reason: fmt.Sprintf("%s: %v", where, err)}
	}
	ps, err := core.AlgoPolicySnapshot(spec.Algo)
	if err != nil {
		return &CheckpointError{Reason: fmt.Sprintf("%s: %v", where, err)}
	}
	forcedLen := g.ForcedLens[i]
	if forcedLen < 0 || forcedLen > g.Arms {
		return &CheckpointError{Reason: fmt.Sprintf("%s: forced_lens %d outside [0,%d]", where, forcedLen, g.Arms)}
	}
	var forced []int
	if forcedLen > 0 {
		forced = make([]int, forcedLen)
		for j := range forced {
			forced[j] = g.Arms - forcedLen + j
		}
	}
	snap := core.AgentSnapshot{
		V: core.SnapshotVersion, Arms: g.Arms, Policy: ps,
		Normalize: true, Seed: spec.Seed,
		R: g.R[i*g.Arms : (i+1)*g.Arms], N: g.N[i*g.Arms : (i+1)*g.Arms],
		NTotal: g.NTotals[i], Steps: g.Steps[i], CurrentArm: g.CurrentArms[i],
		InStep: g.InSteps[i], Forced: forced, RAvg: g.RAvgs[i],
		Normalized: g.Normalizeds[i], Restarts: g.Restarts[i], RNG: g.RNGs[i],
	}

	sh := st.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[id]; ok {
		return &CheckpointError{Reason: fmt.Sprintf("duplicate session id %q", id)}
	}
	chunk := st.lockedChunkFor(sh, g.Arms)
	a, slot, err := core.RestoreAgentIn(chunk.slab, &snap)
	if err != nil {
		return &CheckpointError{Reason: fmt.Sprintf("%s: %v", where, err)}
	}
	drive := fault.Controller(a, set, spec.Seed)
	s := &Session{
		id: id, spec: spec, agent: a, drive: drive,
		seq: g.Seqs[i], open: open, arm: arm,
		slab: chunk.slab, slot: slot, slabOrd: chunk.ord,
	}
	s.kernelOK = drive == core.Controller(a)
	sh.m[id] = s
	return nil
}

// LoadCheckpoint reads and restores a checkpoint file.
func LoadCheckpoint(path string, shards int) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return RestoreCheckpoint(data, shards)
}
