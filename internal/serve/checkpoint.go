package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"microbandit/internal/core"
	"microbandit/internal/fault"
)

// CheckpointVersion is the checkpoint file schema version.
const CheckpointVersion = 1

// Session kinds in a checkpoint record.
const (
	ckptAgent = "agent"
	ckptMeta  = "meta"
	ckptFixed = "fixed"
)

// sessionCheckpoint is one serialized session: its spec, sequencing
// state, and the agent snapshot. The agent payload is kept raw so the
// envelope decodes without knowing the kind up front.
type sessionCheckpoint struct {
	ID       string          `json:"id"`
	Spec     Spec            `json:"spec"`
	Seq      uint64          `json:"seq"`
	Open     bool            `json:"open,omitempty"`
	Arm      int             `json:"arm,omitempty"`
	Kind     string          `json:"kind"`
	Agent    json.RawMessage `json:"agent,omitempty"`
	FixedArm int             `json:"fixed_arm,omitempty"`
}

// checkpointFile is the on-disk layout. Sessions are sorted by id, so a
// quiesced server checkpoints to identical bytes every time.
type checkpointFile struct {
	V        int                 `json:"v"`
	NextID   uint64              `json:"next_id"`
	Sessions []sessionCheckpoint `json:"sessions"`
}

// checkpointSession captures one session under its lock.
//
// Server-side fault wrappers (Spec.Faults) are intentionally not part of
// the snapshot: they are rebuilt from the spec on restore, so their
// private random streams restart. Fault-free sessions replay
// deterministically across a restore; chaos-injected sessions resume with
// a fresh fault stream.
func checkpointSession(s *Session) (sessionCheckpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck := sessionCheckpoint{
		ID: s.id, Spec: s.spec, Seq: s.seq, Open: s.open, Arm: s.arm,
	}
	switch a := s.agent.(type) {
	case *core.Agent:
		snap, err := a.Snapshot()
		if err != nil {
			return ck, fmt.Errorf("session %s: %w", s.id, err)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			return ck, fmt.Errorf("session %s: %w", s.id, err)
		}
		ck.Kind, ck.Agent = ckptAgent, data
	case *core.MetaAgent:
		snap, err := a.Snapshot()
		if err != nil {
			return ck, fmt.Errorf("session %s: %w", s.id, err)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			return ck, fmt.Errorf("session %s: %w", s.id, err)
		}
		ck.Kind, ck.Agent = ckptMeta, data
	case core.FixedArm:
		ck.Kind, ck.FixedArm = ckptFixed, int(a)
	default:
		return ck, fmt.Errorf("session %s: controller %T is not checkpointable", s.id, s.agent)
	}
	return ck, nil
}

// restoreSession rebuilds a session from its checkpoint record. The
// agent resumes its exact snapshot state; the drive-path fault wrapper
// (when the spec arms one) is rebuilt fresh from the spec.
func restoreSession(ck sessionCheckpoint) (*Session, error) {
	if ck.ID == "" {
		return nil, &CheckpointError{Reason: "session record without an id"}
	}
	spec := ck.Spec
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
	}
	var agent core.Controller
	switch ck.Kind {
	case ckptAgent:
		a, err := core.RestoreAgentJSON(ck.Agent)
		if err != nil {
			return nil, &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
		}
		agent = a
	case ckptMeta:
		m, err := core.RestoreMetaAgentJSON(ck.Agent)
		if err != nil {
			return nil, &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
		}
		agent = m
	case ckptFixed:
		if ck.FixedArm < 0 || ck.FixedArm >= spec.Arms {
			return nil, &CheckpointError{Reason: fmt.Sprintf("session %s: fixed arm %d outside [0,%d)", ck.ID, ck.FixedArm, spec.Arms)}
		}
		agent = core.FixedArm(ck.FixedArm)
	default:
		return nil, &CheckpointError{Reason: fmt.Sprintf("session %s: unknown kind %q", ck.ID, ck.Kind)}
	}
	if ck.Open && (ck.Arm < 0 || ck.Arm >= spec.Arms) {
		return nil, &CheckpointError{Reason: fmt.Sprintf("session %s: open arm %d outside [0,%d)", ck.ID, ck.Arm, spec.Arms)}
	}
	set, err := fault.ParseSet(spec.Faults)
	if err != nil {
		return nil, &CheckpointError{Reason: fmt.Sprintf("session %s: %v", ck.ID, err)}
	}
	return &Session{
		id: ck.ID, spec: spec,
		agent: agent, drive: fault.Controller(agent, set, spec.Seed),
		seq: ck.Seq, open: ck.Open, arm: ck.Arm,
	}, nil
}

// Checkpoint serializes every live session, sorted by id. Sessions are
// locked one at a time, so traffic on other sessions proceeds during a
// checkpoint.
func (st *Store) Checkpoint() ([]byte, error) {
	file := checkpointFile{V: CheckpointVersion, NextID: st.nextID.Load()}
	for _, id := range st.IDs() {
		s, ok := st.Get(id)
		if !ok {
			continue // deleted between IDs() and now
		}
		ck, err := checkpointSession(s)
		if err != nil {
			return nil, err
		}
		file.Sessions = append(file.Sessions, ck)
	}
	return json.Marshal(file)
}

// WriteCheckpoint atomically persists the store to path: the file is
// fully written and fsynced under a temporary name in the same
// directory, then renamed over the target, so a crash mid-write never
// leaves a truncated checkpoint behind.
func (st *Store) WriteCheckpoint(path string) error {
	data, err := st.Checkpoint()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RestoreCheckpoint rebuilds a store from checkpoint bytes. Every error
// path returns a typed *CheckpointError (or core's typed snapshot
// errors wrapped in one); it never panics on hostile input.
func RestoreCheckpoint(data []byte, shards int) (*Store, error) {
	var file checkpointFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, &CheckpointError{Reason: fmt.Sprintf("decode: %v", err)}
	}
	if file.V != CheckpointVersion {
		return nil, &CheckpointError{Reason: fmt.Sprintf("version %d (this build reads version %d)", file.V, CheckpointVersion)}
	}
	st := NewStore(shards)
	st.nextID.Store(file.NextID)
	for _, ck := range file.Sessions {
		s, err := restoreSession(ck)
		if err != nil {
			return nil, err
		}
		if err := st.insert(s); err != nil {
			return nil, &CheckpointError{Reason: err.Error()}
		}
	}
	return st, nil
}

// LoadCheckpoint reads and restores a checkpoint file.
func LoadCheckpoint(path string, shards int) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return RestoreCheckpoint(data, shards)
}
