package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"microbandit/internal/core"
)

// ctxVecFor fabricates a deterministic 3-value context vector (phase,
// mpki, bw_util) that cycles through a handful of distinct signatures.
func ctxVecFor(round int) [3]float64 {
	phase := round % 3
	mpki := []float64{1, 5, 60}[round%3]    // all above the first band cut, so
	bw := []float64{0.3, 0.6, 0.9}[round%3] // no vector aliases the zero signature
	return [3]float64{float64(phase), mpki, bw}
}

// TestContextualSessionOverHTTP drives a contextual session through the
// scalar HTTP surface: context-carrying steps, bare steps (zero
// signature), rewards, and the info read-model's context count.
func TestContextualSessionOverHTTP(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ctx-ducb","arms":4,"seed":7,"max_contexts":8}`, http.StatusCreated, &cr)
	base := "/v1/sessions/" + cr.ID

	// A bare step (no body) before any context runs the zero-signature
	// context.
	var st0 stepResponse
	do(t, srv, "POST", base+"/step", "", http.StatusOK, &st0)
	do(t, srv, "POST", base+"/reward", fmt.Sprintf(`{"seq":%d,"reward":0.5}`, st0.Seq), http.StatusOK, nil)

	for r := 0; r < 9; r++ {
		v := ctxVecFor(r)
		body := fmt.Sprintf(`{"context":[%g,%g,%g]}`, v[0], v[1], v[2])
		var st stepResponse
		do(t, srv, "POST", base+"/step", body, http.StatusOK, &st)
		if st.Seq != uint64(r+1) || st.Arm < 0 || st.Arm >= 4 {
			t.Fatalf("step %d = %+v", r, st)
		}
		do(t, srv, "POST", base+"/reward", fmt.Sprintf(`{"seq":%d,"reward":0.5}`, st.Seq), http.StatusOK, nil)
	}
	// A bare step now keeps the most recently selected context: no new
	// context is created.
	var st stepResponse
	do(t, srv, "POST", base+"/step", "", http.StatusOK, &st)
	do(t, srv, "POST", base+"/reward", fmt.Sprintf(`{"seq":%d,"reward":0.5}`, st.Seq), http.StatusOK, nil)

	var info SessionInfo
	do(t, srv, "GET", base, "", http.StatusOK, &info)
	// Three signatures from ctxVecFor plus the zero-signature context.
	if info.Contexts != 4 {
		t.Fatalf("info.Contexts = %d, want 4 (info %+v)", info.Contexts, info)
	}
	if info.Spec.MaxContexts != 8 {
		t.Fatalf("info.Spec.MaxContexts = %d, want 8", info.Spec.MaxContexts)
	}
}

// TestContextualSessionMatchesCoreAgent: the serve session is a thin
// protocol shell — the arm stream it emits under a context schedule must
// match a directly driven core.ContextualAgent with the same config.
func TestContextualSessionMatchesCoreAgent(t *testing.T) {
	const arms, seed, rounds = 5, 31, 120
	ref, err := core.NewContextualAgent(core.ContextualConfig{Arms: arms, Algo: "ducb", Seed: seed})
	if err != nil {
		t.Fatalf("NewContextualAgent: %v", err)
	}
	st := NewStore(1)
	s, err := st.Create(Spec{Algo: "ctx-ducb", Arms: arms, Seed: seed})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for r := 0; r < rounds; r++ {
		v := ctxVecFor(r)
		sig, err := SignatureFromVector(v[:])
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		ref.SetContext(sig)
		wantArm := ref.Step()
		seq, gotArm, err := s.StepWithContext(v[:])
		if err != nil {
			t.Fatalf("round %d step: %v", r, err)
		}
		if gotArm != wantArm {
			t.Fatalf("round %d: session arm %d, core agent arm %d", r, gotArm, wantArm)
		}
		rw := ckptReward(0, gotArm, seq)
		ref.Reward(rw)
		if _, err := s.Reward(seq, rw); err != nil {
			t.Fatalf("round %d reward: %v", r, err)
		}
	}
}

// TestContextualStepBadRequests: malformed context vectors and contexts
// sent to non-contextual sessions are typed 400s, and none of them
// consume a sequence number.
func TestContextualStepBadRequests(t *testing.T) {
	srv := New(Config{})
	var ctxCr, plainCr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"linucb","arms":3,"seed":1}`, http.StatusCreated, &ctxCr)
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ducb","arms":3,"seed":1}`, http.StatusCreated, &plainCr)

	cases := []struct {
		name, id, body string
	}{
		{"wrong length short", ctxCr.ID, `{"context":[1,2]}`},
		{"wrong length long", ctxCr.ID, `{"context":[1,2,3,4]}`},
		{"empty vector", ctxCr.ID, `{"context":[]}`},
		{"negative phase", ctxCr.ID, `{"context":[-1,2,0.5]}`},
		{"fractional phase", ctxCr.ID, `{"context":[1.5,2,0.5]}`},
		{"not json", ctxCr.ID, `{context`},
		{"trailing data", ctxCr.ID, `{"context":[1,2,0.5]} extra`},
		{"ctx on plain session", plainCr.ID, `{"context":[1,2,0.5]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := "/v1/sessions/" + c.id + "/step"
			if code := errCode(t, srv, "POST", path, c.body, http.StatusBadRequest); code != CodeBadRequest {
				t.Fatalf("code = %q, want %q", code, CodeBadRequest)
			}
		})
	}
	// None of the rejections above opened a step.
	var info SessionInfo
	do(t, srv, "GET", "/v1/sessions/"+ctxCr.ID, "", http.StatusOK, &info)
	if info.Seq != 0 || info.Open {
		t.Fatalf("rejected steps moved the session: %+v", info)
	}
}

// TestContextualSpecValidation: max_contexts is contextual-only and
// bounded, and contextual algos exclude meta portfolios.
func TestContextualSpecValidation(t *testing.T) {
	srv := New(Config{})
	bad := []string{
		`{"algo":"ducb","arms":3,"max_contexts":4}`,
		fmt.Sprintf(`{"algo":"ctx-ducb","arms":3,"max_contexts":%d}`, core.MaxMaxContexts+1),
		`{"algo":"ctx-ducb","arms":3,"max_contexts":-1}`,
		`{"algo":"ctx-ducb","arms":3,"meta_pairs":[[0.5,0.99]]}`,
	}
	for _, body := range bad {
		if code := errCode(t, srv, "POST", "/v1/sessions", body, http.StatusBadRequest); code != CodeBadRequest {
			t.Fatalf("%s: code %q, want %q", body, code, CodeBadRequest)
		}
	}
	for _, algo := range []string{"ctx-ducb", "linucb", "ctx-thompson"} {
		var cr createResponse
		do(t, srv, "POST", "/v1/sessions",
			fmt.Sprintf(`{"algo":%q,"arms":3,"seed":5,"max_contexts":2}`, algo),
			http.StatusCreated, &cr)
		if cr.Arms != 3 {
			t.Fatalf("%s: create = %+v", algo, cr)
		}
	}
}

// TestCreateWithIDIdempotentMaxContexts: a retried PUT with the same
// max_contexts is idempotent; a differing max_contexts is a conflict.
func TestCreateWithIDIdempotentMaxContexts(t *testing.T) {
	st := NewStore(1)
	spec := Spec{Algo: "ctx-thompson", Arms: 3, Seed: 4, MaxContexts: 6}
	if _, created, err := st.CreateWithID("ctx-a", spec); err != nil || !created {
		t.Fatalf("first create: created=%v err=%v", created, err)
	}
	if _, created, err := st.CreateWithID("ctx-a", spec); err != nil || created {
		t.Fatalf("retried create: created=%v err=%v", created, err)
	}
	spec.MaxContexts = 7
	_, _, err := st.CreateWithID("ctx-a", spec)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeConflict {
		t.Fatalf("differing max_contexts: err = %v, want %s", err, CodeConflict)
	}
}

// TestBatchContextMatchesScalar: ctx-carrying batch steps land in the
// same signature contexts the scalar endpoint would select, so the two
// transports emit identical arm streams.
func TestBatchContextMatchesScalar(t *testing.T) {
	const rounds = 60
	spec := `{"algo":"ctx-ducb","arms":4,"seed":21}`

	runScalar := func() []int {
		srv := New(Config{})
		var cr createResponse
		do(t, srv, "POST", "/v1/sessions", spec, http.StatusCreated, &cr)
		var arms []int
		for r := 0; r < rounds; r++ {
			v := ctxVecFor(r)
			var st stepResponse
			do(t, srv, "POST", "/v1/sessions/"+cr.ID+"/step",
				fmt.Sprintf(`{"context":[%g,%g,%g]}`, v[0], v[1], v[2]), http.StatusOK, &st)
			arms = append(arms, st.Arm)
			do(t, srv, "POST", "/v1/sessions/"+cr.ID+"/reward",
				fmt.Sprintf(`{"seq":%d,"reward":%g}`, st.Seq, ckptReward(0, st.Arm, st.Seq)), http.StatusOK, nil)
		}
		return arms
	}

	runBatched := func() []int {
		srv := New(Config{})
		var cr createResponse
		do(t, srv, "POST", "/v1/sessions", spec, http.StatusCreated, &cr)
		var arms []int
		var seq uint64
		for r := 0; r < rounds; r++ {
			var b strings.Builder
			b.WriteString(`{"ops":[`)
			if r > 0 {
				fmt.Fprintf(&b, `{"id":%q,"seq":%d,"reward":%g},`,
					cr.ID, seq, ckptReward(0, arms[r-1], seq))
			}
			v := ctxVecFor(r)
			fmt.Fprintf(&b, `{"id":%q,"step":true,"ctx":[%g,%g,%g]}]}`, cr.ID, v[0], v[1], v[2])
			out := postBatch(t, srv, b.String())
			st := out.Results[len(out.Results)-1]
			if st.Seq == nil || st.Arm == nil {
				t.Fatalf("round %d: step result = %+v", r, st)
			}
			seq = *st.Seq
			arms = append(arms, *st.Arm)
		}
		return arms
	}

	want := runScalar()
	got := runBatched()
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("round %d: batch arm %d, scalar arm %d", r, got[r], want[r])
		}
	}
}

// TestBatchContextErrors: a ctx on a non-contextual session is a per-op
// bad_request (matching the scalar endpoint, even though the session is
// otherwise kernel-eligible), and a ctx on a reward op rejects the whole
// batch at parse time.
func TestBatchContextErrors(t *testing.T) {
	srv := New(Config{})
	var plain createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ducb","arms":3,"seed":2}`, http.StatusCreated, &plain)

	out := postBatch(t, srv, fmt.Sprintf(
		`{"ops":[{"id":%q,"step":true,"ctx":[1,2,0.5]},{"id":%q,"step":true}]}`, plain.ID, plain.ID))
	if len(out.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(out.Results))
	}
	if out.Results[0].Error == nil || out.Results[0].Error.Code != CodeBadRequest {
		t.Fatalf("ctx-on-plain result = %+v, want %s", out.Results[0], CodeBadRequest)
	}
	if out.Results[1].Seq == nil || out.Results[1].Arm == nil {
		t.Fatalf("plain step result = %+v", out.Results[1])
	}

	if code := errCode(t, srv, "POST", "/v1/batch",
		fmt.Sprintf(`{"ops":[{"id":%q,"seq":0,"reward":1,"ctx":[1,2,3]}]}`, plain.ID),
		http.StatusBadRequest); code != CodeBadRequest {
		t.Fatalf("ctx-on-reward code = %q, want %q", code, CodeBadRequest)
	}
	// Malformed ctx vectors reject the batch at parse time.
	for _, body := range []string{
		fmt.Sprintf(`{"ops":[{"id":%q,"step":true,"ctx":[1,2]}]}`, plain.ID),
		fmt.Sprintf(`{"ops":[{"id":%q,"step":true,"ctx":[1,2,"x"]}]}`, plain.ID),
		fmt.Sprintf(`{"ops":[{"id":%q,"step":true,"ctx":{}}]}`, plain.ID),
	} {
		if code := errCode(t, srv, "POST", "/v1/batch", body, http.StatusBadRequest); code != CodeBadRequest {
			t.Fatalf("%s: code %q, want %q", body, code, CodeBadRequest)
		}
	}
}

// TestBatchOpCtxRoundTrip: AppendBatchOp emits ctx members that
// ParseBatchOps recovers exactly.
func TestBatchOpCtxRoundTrip(t *testing.T) {
	in := []BatchOp{
		{ID: "a", Step: true, Ctx: []float64{2, 7.5, 0.25}},
		{ID: "b", Step: true},
		{ID: "a", Seq: 0, Reward: 0.5},
	}
	body := []byte(`{"ops":[`)
	for i, op := range in {
		if i > 0 {
			body = append(body, ',')
		}
		body = AppendBatchOp(body, op)
	}
	body = append(body, []byte(`]}`)...)
	out, err := ParseBatchOps(body)
	if err != nil {
		t.Fatalf("ParseBatchOps(%s): %v", body, err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d ops, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Step != in[i].Step {
			t.Fatalf("op %d: %+v vs %+v", i, out[i], in[i])
		}
		if len(out[i].Ctx) != len(in[i].Ctx) {
			t.Fatalf("op %d ctx: %v vs %v", i, out[i].Ctx, in[i].Ctx)
		}
		for j := range in[i].Ctx {
			if out[i].Ctx[j] != in[i].Ctx[j] {
				t.Fatalf("op %d ctx[%d]: %v vs %v", i, j, out[i].Ctx[j], in[i].Ctx[j])
			}
		}
	}
}

// TestContextualCheckpointRoundTrip is the contextual acceptance test:
// contextual sessions checkpoint mid-stream (one with an open step in a
// non-zero context) and the restored store continues decision-identically
// under the same context schedule.
func TestContextualCheckpointRoundTrip(t *testing.T) {
	specs := []Spec{
		{Algo: "ctx-ducb", Arms: 4, Seed: 41, MaxContexts: 3},
		{Algo: "linucb", Arms: 3, Seed: 42},
		{Algo: "ctx-thompson", Arms: 5, Seed: 43},
	}
	st := NewStore(2)
	var ids []string
	for _, sp := range specs {
		s, err := st.Create(sp)
		if err != nil {
			t.Fatalf("Create(%+v): %v", sp, err)
		}
		ids = append(ids, s.ID())
	}
	drive := func(store *Store, from, n int) map[string][]int {
		arms := make(map[string][]int)
		for si, id := range ids {
			s, ok := store.Get(id)
			if !ok {
				t.Fatalf("session %s missing", id)
			}
			for r := from; r < from+n; r++ {
				v := ctxVecFor(r + si)
				seq, arm, err := s.StepWithContext(v[:])
				if err != nil {
					t.Fatalf("session %s round %d step: %v", id, r, err)
				}
				if _, err := s.Reward(seq, ckptReward(si, arm, seq)); err != nil {
					t.Fatalf("session %s round %d reward: %v", id, r, err)
				}
				arms[id] = append(arms[id], arm)
			}
		}
		return arms
	}
	drive(st, 0, 40)

	// One extra contextual session checkpointed with a step open in a
	// non-zero-signature context.
	openSess, err := st.Create(Spec{Algo: "ctx-ducb", Arms: 3, Seed: 44})
	if err != nil {
		t.Fatalf("Create open session: %v", err)
	}
	openVec := ctxVecFor(1)
	openSeq, openArm, err := openSess.StepWithContext(openVec[:])
	if err != nil {
		t.Fatalf("open step: %v", err)
	}

	data, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	want := drive(st, 40, 80)

	st2, err := RestoreCheckpoint(data, 8)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	got := drive(st2, 40, 80)
	for _, id := range ids {
		w, g := want[id], got[id]
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("session %s diverges at decision %d: original %d, restored %d", id, i, w[i], g[i])
			}
		}
	}

	// The open contextual decision survived: its reward lands in the
	// context that opened it, and both stores then pick the same next arm.
	restored, ok := st2.Get(openSess.ID())
	if !ok {
		t.Fatalf("open session missing after restore")
	}
	if _, _, err := restored.Step(); err == nil {
		t.Fatal("second step on restored open session succeeded, want conflict")
	}
	if _, err := restored.Reward(openSeq, 0.9); err != nil {
		t.Fatalf("restored open reward: %v", err)
	}
	if _, err := openSess.Reward(openSeq, 0.9); err != nil {
		t.Fatalf("original open reward: %v", err)
	}
	_ = openArm
	for r := 0; r < 30; r++ {
		v := ctxVecFor(r)
		q1, a1, err1 := openSess.StepWithContext(v[:])
		q2, a2, err2 := restored.StepWithContext(v[:])
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d: %v / %v", r, err1, err2)
		}
		if a1 != a2 {
			t.Fatalf("round %d: original arm %d, restored arm %d", r, a1, a2)
		}
		s1, _ := openSess.Info()
		s2, _ := restored.Info()
		if s1.Contexts != s2.Contexts {
			t.Fatalf("round %d: context counts %d vs %d", r, s1.Contexts, s2.Contexts)
		}
		openSess.Reward(q1, 0.5)
		restored.Reward(q2, 0.5)
	}
}

// ckptForSpec builds a store with one driven session of the given spec
// and returns its checkpoint bytes and the session id.
func ckptForSpec(t *testing.T, spec Spec, rounds int) ([]byte, string) {
	t.Helper()
	st := NewStore(1)
	s, err := st.Create(spec)
	if err != nil {
		t.Fatalf("Create(%+v): %v", spec, err)
	}
	for r := 0; r < rounds; r++ {
		var (
			seq uint64
			arm int
		)
		if _, contextual := core.ContextualBase(spec.Algo); contextual {
			v := ctxVecFor(r)
			seq, arm, err = s.StepWithContext(v[:])
		} else {
			seq, arm, err = s.Step()
		}
		if err != nil {
			t.Fatalf("step %d: %v", r, err)
		}
		if _, err := s.Reward(seq, ckptReward(0, arm, seq)); err != nil {
			t.Fatalf("reward %d: %v", r, err)
		}
	}
	data, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return data, s.ID()
}

// mutateCheckpoint decodes, mutates, and re-encodes checkpoint bytes.
func mutateCheckpoint(t *testing.T, data []byte, mutate func(f *checkpointFile)) []byte {
	t.Helper()
	var file checkpointFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	mutate(&file)
	out, err := json.Marshal(file)
	if err != nil {
		t.Fatalf("marshal mutated checkpoint: %v", err)
	}
	return out
}

// wantCheckpointError asserts a restore fails with a typed
// *CheckpointError whose message names the offending record.
func wantCheckpointError(t *testing.T, data []byte, nameSubstr string) {
	t.Helper()
	_, err := RestoreCheckpoint(data, 1)
	var ce *CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CheckpointError", err, err)
	}
	if nameSubstr != "" && !strings.Contains(ce.Error(), nameSubstr) {
		t.Fatalf("error %q does not name %q", ce.Error(), nameSubstr)
	}
}

// TestRestoreContextualSkew: ctx-kind records whose agent payload
// disagrees with the session spec are typed *CheckpointError values
// naming the session, never silent skew.
func TestRestoreContextualSkew(t *testing.T) {
	base, id := ckptForSpec(t, Spec{Algo: "ctx-ducb", Arms: 4, Seed: 9}, 12)

	find := func(f *checkpointFile) *sessionCheckpoint {
		for i := range f.Sessions {
			if f.Sessions[i].ID == id {
				return &f.Sessions[i]
			}
		}
		t.Fatalf("session %s not in checkpoint", id)
		return nil
	}
	cases := []struct {
		name   string
		mutate func(f *checkpointFile)
	}{
		{"spec arms skew", func(f *checkpointFile) { find(f).Spec.Arms = 5 }},
		{"spec algo not contextual", func(f *checkpointFile) {
			ck := find(f)
			ck.Spec.Algo = "ducb"
			ck.Spec.MaxContexts = 0
		}},
		{"base algo skew", func(f *checkpointFile) { find(f).Spec.Algo = "linucb" }},
		{"open flag skew", func(f *checkpointFile) {
			ck := find(f)
			ck.Open = true
			ck.Arm = 0
		}},
		{"agent payload garbage", func(f *checkpointFile) { find(f).Agent = []byte(`{"v":1}`) }},
		{"agent payload null", func(f *checkpointFile) { find(f).Agent = []byte(`null`) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantCheckpointError(t, mutateCheckpoint(t, base, c.mutate), id)
		})
	}
	// The unmutated checkpoint restores cleanly (the fixture is valid).
	if _, err := RestoreCheckpoint(base, 1); err != nil {
		t.Fatalf("unmutated restore: %v", err)
	}
}

// TestRestoreAgentSpecSkew: a v1-style agent record whose snapshot shape
// disagrees with its session spec — arm count or in-step flag — is a
// typed error naming the session. Before the shape cross-check, such a
// record restored an agent the protocol layer mis-modeled, corrupting on
// the next step instead of failing the restore.
func TestRestoreAgentSpecSkew(t *testing.T) {
	snapJSON := func(arms int, openStep bool) json.RawMessage {
		cfg, err := core.AlgoConfig("ducb", arms, 3, false)
		if err != nil {
			t.Fatalf("AlgoConfig: %v", err)
		}
		a, err := core.New(cfg)
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		for i := 0; i < 5; i++ {
			a.Step()
			a.Reward(0.5)
		}
		if openStep {
			a.Step()
		}
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("marshal snapshot: %v", err)
		}
		return data
	}
	file := func(ck sessionCheckpoint) []byte {
		data, err := json.Marshal(checkpointFile{V: checkpointVersionV1, NextID: 1,
			Sessions: []sessionCheckpoint{ck}})
		if err != nil {
			t.Fatalf("marshal file: %v", err)
		}
		return data
	}
	t.Run("arms skew", func(t *testing.T) {
		wantCheckpointError(t, file(sessionCheckpoint{
			ID: "skew-arms", Spec: Spec{Algo: "ducb", Arms: 3, Seed: 3},
			Kind: ckptAgent, Agent: snapJSON(4, false),
		}), "skew-arms")
	})
	t.Run("in-step skew closed", func(t *testing.T) {
		// Snapshot holds an open step, session record says closed.
		wantCheckpointError(t, file(sessionCheckpoint{
			ID: "skew-open", Spec: Spec{Algo: "ducb", Arms: 3, Seed: 3},
			Kind: ckptAgent, Agent: snapJSON(3, true),
		}), "skew-open")
	})
	t.Run("in-step skew open", func(t *testing.T) {
		// Session record says open, snapshot has no step in flight.
		wantCheckpointError(t, file(sessionCheckpoint{
			ID: "skew-closed", Spec: Spec{Algo: "ducb", Arms: 3, Seed: 3},
			Kind: ckptAgent, Agent: snapJSON(3, false), Open: true, Arm: 1,
		}), "skew-closed")
	})
	t.Run("valid record restores", func(t *testing.T) {
		st, err := RestoreCheckpoint(file(sessionCheckpoint{
			ID: "ok", Spec: Spec{Algo: "ducb", Arms: 3, Seed: 3},
			Kind: ckptAgent, Agent: snapJSON(3, false),
		}), 1)
		if err != nil {
			t.Fatalf("valid v1 agent record: %v", err)
		}
		if _, ok := st.Get("ok"); !ok {
			t.Fatal("session missing after restore")
		}
	})
}

// TestRestoreMetaSpecSkew: meta records disagreeing with their spec on
// arm count or step-open state are typed errors.
func TestRestoreMetaSpecSkew(t *testing.T) {
	base, id := ckptForSpec(t,
		Spec{Arms: 3, Seed: 17, MetaPairs: [][2]float64{{0.5, 0.99}, {1.0, 0.999}}}, 10)
	cases := []struct {
		name   string
		mutate func(f *checkpointFile)
	}{
		{"arms skew", func(f *checkpointFile) { f.Sessions[0].Spec.Arms = 4 }},
		{"open skew", func(f *checkpointFile) {
			f.Sessions[0].Open = true
			f.Sessions[0].Arm = 0
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantCheckpointError(t, mutateCheckpoint(t, base, c.mutate), id)
		})
	}
}

// TestRestoreSlabInStepSkew: a slab group entry whose in_steps column
// disagrees with its opens column is a typed error, not a session that
// conflicts on its first operation.
func TestRestoreSlabInStepSkew(t *testing.T) {
	base, id := ckptForSpec(t, Spec{Algo: "ducb", Arms: 3, Seed: 5}, 10)
	t.Run("open without in-step", func(t *testing.T) {
		wantCheckpointError(t, mutateCheckpoint(t, base, func(f *checkpointFile) {
			f.Slabs[0].Opens[0] = true
			f.Slabs[0].OpenArms[0] = 1
		}), id)
	})
	t.Run("in-step without open", func(t *testing.T) {
		wantCheckpointError(t, mutateCheckpoint(t, base, func(f *checkpointFile) {
			f.Slabs[0].InSteps[0] = true
			f.Slabs[0].CurrentArms[0] = 1
		}), id)
	})
}

// TestSlabValidateDeterministicColumn: when several columns are
// simultaneously wrong, validate names the same (first) column every
// time — error strings are part of the operator-facing contract and must
// not depend on iteration order.
func TestSlabValidateDeterministicColumn(t *testing.T) {
	base, _ := ckptForSpec(t, Spec{Algo: "ducb", Arms: 3, Seed: 6}, 4)
	var first string
	for i := 0; i < 20; i++ {
		data := mutateCheckpoint(t, base, func(f *checkpointFile) {
			g := &f.Slabs[0]
			g.Seqs = nil
			g.Restarts = nil
			g.RNGs = nil
		})
		_, err := RestoreCheckpoint(data, 1)
		var ce *CheckpointError
		if !errors.As(err, &ce) {
			t.Fatalf("run %d: err = %v (%T), want *CheckpointError", i, err, err)
		}
		if !strings.Contains(ce.Error(), "seqs") {
			t.Fatalf("run %d: error %q does not name first column %q", i, ce.Error(), "seqs")
		}
		if first == "" {
			first = ce.Error()
		} else if ce.Error() != first {
			t.Fatalf("run %d: error %q differs from first run %q", i, ce.Error(), first)
		}
	}
}

// TestSignatureFromVectorEdgeValues pins the wire-vector validation
// rules the HTTP layer relies on.
func TestSignatureFromVectorEdgeValues(t *testing.T) {
	if _, err := SignatureFromVector([]float64{0, 0, 0}); err != nil {
		t.Fatalf("zero vector: %v", err)
	}
	sig, err := SignatureFromVector([]float64{70000, 0, 0})
	if err != nil {
		t.Fatalf("large phase: %v", err)
	}
	if sig != core.SignatureOf(70000, 0, 0) {
		t.Fatalf("large phase sig = %x", sig)
	}
	bad := [][]float64{
		nil,
		{},
		{1, 2},
		{1, 2, 3, 4},
		{math.NaN(), 0, 0},
		{0, math.Inf(1), 0},
		{0, 0, math.Inf(-1)},
		{-1, 0, 0},
		{0.5, 0, 0},
	}
	for _, v := range bad {
		if _, err := SignatureFromVector(v); err == nil {
			t.Fatalf("SignatureFromVector(%v) accepted", v)
		}
	}
}
