package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"microbandit/internal/serve"
	"microbandit/internal/xrand"
)

func TestRunSmoke(t *testing.T) {
	srv := serve.New(serve.Config{})
	res, err := Run(context.Background(), Options{
		Handler:  srv,
		Workers:  4,
		Duration: 150 * time.Millisecond,
		Spec:     serve.Spec{Algo: "ducb", Arms: 8},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Decisions == 0 || res.DecisionsPerSec <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.Requests < 2*res.Decisions {
		t.Fatalf("requests %d < 2×decisions %d", res.Requests, res.Decisions)
	}
	if res.P50Us <= 0 || res.P99Us < res.P50Us || res.P999Us < res.P99Us {
		t.Fatalf("percentiles not ordered: %+v", res)
	}
	if res.Workers != 4 || res.Arms != 8 {
		t.Fatalf("echoed options wrong: %+v", res)
	}
	// Closed loop: no session may end the run with an open decision.
	for _, id := range srv.Store().IDs() {
		s, ok := srv.Store().Get(id)
		if !ok {
			continue
		}
		if info, err := s.Info(); err == nil && info.Open {
			t.Fatalf("session %s left with an open decision", id)
		}
	}
	if got := srv.Store().Len(); got != 4 {
		t.Fatalf("sessions = %d, want 4", got)
	}
}

func TestRunCanceledEarly(t *testing.T) {
	srv := serve.New(serve.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Options{Handler: srv, Workers: 2, Duration: 10 * time.Second, Warmup: -1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel did not stop the run (took %v)", elapsed)
	}
	if res.Decisions == 0 {
		t.Fatal("canceled run reported no partial work")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("nil handler accepted")
	}
	srv := serve.New(serve.Config{})
	if _, err := Run(context.Background(), Options{Handler: srv, Spec: serve.Spec{Arms: -1}}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	// 1..1000 µs uniformly.
	for i := int64(1); i <= 1000; i++ {
		h.record(i * 1000)
	}
	if q := h.quantile(0.5); q < 400_000 || q > 600_000 {
		t.Fatalf("p50 = %v ns, want ~500µs", q)
	}
	if q := h.quantile(0.99); q < 950_000 || q > 1_050_000 {
		t.Fatalf("p99 = %v ns, want ~990µs", q)
	}
	if h.max != 1_000_000 {
		t.Fatalf("max = %d", h.max)
	}
	// Overflow and merge.
	var h2 histogram
	h2.record(500_000_000)
	h.merge(&h2)
	if h.count != 1001 || h.overflow != 1 || h.max != 500_000_000 {
		t.Fatalf("merge: count %d overflow %d max %d", h.count, h.overflow, h.max)
	}
	if q := h.quantile(1.0); q != 500_000_000 {
		t.Fatalf("p100 = %v", q)
	}
}

func TestRunBatchMode(t *testing.T) {
	srv := serve.New(serve.Config{})
	res, err := Run(context.Background(), Options{
		Handler:  srv,
		Workers:  3,
		Batch:    16,
		Duration: 150 * time.Millisecond,
		Spec:     serve.Spec{Algo: "ducb", Arms: 6},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Decisions == 0 || res.DecisionsPerSec <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.Batch != 16 {
		t.Fatalf("batch echoed as %d", res.Batch)
	}
	// One request carries a whole round: far fewer requests than
	// decisions, and the normalized latency reflects the batch size.
	if res.Requests >= res.Decisions {
		t.Fatalf("batch mode made %d requests for %d decisions", res.Requests, res.Decisions)
	}
	if want := res.P50Us / 16; res.P50PerDecisionUs != want {
		t.Fatalf("p50 per decision %v, want %v", res.P50PerDecisionUs, want)
	}
	if got := srv.Store().Len(); got != 3*16 {
		t.Fatalf("sessions = %d, want 48", got)
	}
	// Closed loop: every session ends the run with its decision closed.
	for _, id := range srv.Store().IDs() {
		s, ok := srv.Store().Get(id)
		if !ok {
			continue
		}
		info, err := s.Info()
		if err != nil {
			t.Fatalf("Info(%s): %v", id, err)
		}
		if info.Seq == 0 {
			t.Fatalf("session %s saw no traffic", id)
		}
	}
}

// TestWarmupExcluded: the warmup window is reported but its traffic is
// not — a run whose duration is tiny next to its warmup still reports
// only the measured window's seconds.
func TestWarmupExcluded(t *testing.T) {
	srv := serve.New(serve.Config{})
	res, err := Run(context.Background(), Options{
		Handler:  srv,
		Workers:  2,
		Duration: 100 * time.Millisecond,
		Warmup:   200 * time.Millisecond,
		Spec:     serve.Spec{Algo: "eps", Arms: 4},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.WarmupSeconds != 0.2 {
		t.Fatalf("warmup_seconds = %v, want 0.2", res.WarmupSeconds)
	}
	if res.Seconds > 0.19 {
		t.Fatalf("measured window %.3fs includes the warmup", res.Seconds)
	}
	if res.Decisions == 0 {
		t.Fatal("no measured decisions after warmup")
	}
	// The store has seen strictly more traffic than the measurement
	// counted: warmup decisions happened but were not recorded.
	var total uint64
	for _, id := range srv.Store().IDs() {
		s, ok := srv.Store().Get(id)
		if !ok {
			continue
		}
		info, err := s.Info()
		if err != nil {
			t.Fatalf("Info(%s): %v", id, err)
		}
		total += info.Seq
	}
	if total <= uint64(res.Decisions) {
		t.Fatalf("store counts %d steps, measurement %d — warmup traffic missing", total, res.Decisions)
	}
}

// TestRunMultiTarget: workers spread round-robin over two servers, and
// the result carries one latency summary per target.
func TestRunMultiTarget(t *testing.T) {
	a := serve.New(serve.Config{})
	b := serve.New(serve.Config{})
	res, err := Run(context.Background(), Options{
		Targets: []Target{
			{Name: "node-a", Handler: a},
			{Name: "node-b", Handler: b},
		},
		Workers:  4,
		Duration: 150 * time.Millisecond,
		Warmup:   -1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if len(res.PerTarget) != 2 {
		t.Fatalf("per_target entries = %d, want 2", len(res.PerTarget))
	}
	var sumReq, sumDec int64
	for _, tr := range res.PerTarget {
		if tr.Workers != 2 {
			t.Fatalf("target %s got %d workers, want 2", tr.Name, tr.Workers)
		}
		if tr.Requests == 0 || tr.Samples == 0 || tr.P50Us <= 0 {
			t.Fatalf("target %s has no measurement: %+v", tr.Name, tr)
		}
		sumReq += tr.Requests
		sumDec += tr.Decisions
	}
	if sumReq != res.Requests || sumDec != res.Decisions {
		t.Fatalf("per-target sums (%d req, %d dec) disagree with totals (%d, %d)",
			sumReq, sumDec, res.Requests, res.Decisions)
	}
	if a.Store().Len() != 2 || b.Store().Len() != 2 {
		t.Fatalf("sessions split %d/%d, want 2/2", a.Store().Len(), b.Store().Len())
	}
}

// TestZeroSampleRun: a run canceled before its warmup window closes
// reports an explicitly empty measurement instead of quantiles over
// nothing.
func TestZeroSampleRun(t *testing.T) {
	srv := serve.New(serve.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res, err := Run(ctx, Options{
		Handler:  srv,
		Workers:  2,
		Duration: 5 * time.Second,
		Warmup:   5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.ZeroSample || res.Samples != 0 {
		t.Fatalf("want explicit zero-sample result, got samples=%d zero=%v", res.Samples, res.ZeroSample)
	}
	if res.P50Us != 0 || res.P99Us != 0 || res.DecisionsPerSec != 0 {
		t.Fatalf("zero-sample run reported nonzero stats: %+v", res)
	}
}

// TestDrainingCountsRetriesNotErrors: a server that drains mid-run
// produces Retry-After'd 503s, which the workers back off on — retries,
// never errors.
func TestDrainingCountsRetriesNotErrors(t *testing.T) {
	srv := serve.New(serve.Config{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		srv.SetState(serve.StateDraining)
	}()
	res, err := Run(context.Background(), Options{
		Handler:  srv,
		Workers:  2,
		Duration: 300 * time.Millisecond,
		Warmup:   -1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("draining produced %d errors, want 0 (retries=%d)", res.Errors, res.Retries)
	}
	if res.Retries == 0 {
		t.Fatal("draining produced no retries — the drain never hit the run?")
	}
	if res.Decisions == 0 {
		t.Fatal("no decisions before the drain")
	}
}

// TestScalarResyncStepOpen: a decision opened behind the client's back
// (the failover-rewind signature) is read back and rewarded — the
// closed loop continues with a resync, not an error.
func TestScalarResyncStepOpen(t *testing.T) {
	srv := serve.New(serve.Config{})
	var recording atomic.Bool
	recording.Store(true)
	w, err := newWorker(srv, serve.Spec{Algo: "ducb", Arms: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.rec = &recording
	w.rng = xrand.New(1)
	// Open a decision the worker never sees the response to.
	req := httptest.NewRequest("POST", w.base+"/step", nil)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("setup step: %d", rw.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	w.runScalar(ctx)
	if w.errors != 0 {
		t.Fatalf("resync path recorded %d errors", w.errors)
	}
	if w.resyncs == 0 {
		t.Fatal("open decision was never resynced")
	}
	if w.decisions == 0 {
		t.Fatal("loop did not continue after the resync")
	}
	s, _ := srv.Store().Get(w.id)
	if info, err := s.Info(); err != nil || info.Open {
		t.Fatalf("session left open after resync loop: %+v, %v", info, err)
	}
}
