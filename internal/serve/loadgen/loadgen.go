// Package loadgen is the closed-loop load generator for the serve API.
// Each worker owns one session and drives it as fast as the server
// answers: step, observe the arm, post a deterministic reward, repeat.
// In batch mode (Options.Batch > 0) a worker owns Batch sessions instead
// and advances all of them with one POST /v1/batch per round — the
// previous round's rewards plus the next steps in a single body.
// Per-request latencies land in fixed-width histograms (one per worker,
// merged at the end, so the measurement path takes no locks), from which
// the result reports p50/p99/p999 and throughput. A warmup window at the
// start of the run is excluded from every counter and histogram, so
// cold-start effects (first allocations, branch training) never pollute
// the tail percentiles.
//
// The generator speaks to any http.Handler. Handing it an in-process
// *serve.Server measures the decision engine itself — no sockets, no
// kernel — which is the configuration the repo's reference numbers in
// BENCH_serve.json use; handing it NewHTTPTarget measures a live server
// over real sockets instead. Multi-target mode (Options.Targets) spreads
// the workers round-robin over several endpoints — the cluster benchmark
// drives every node of a ring this way — and reports a per-target
// latency histogram next to the merged one.
//
// The workers are cluster-aware clients: a 503 (draining node, dead
// node, mid-failover router) is retried with jittered exponential
// backoff, honoring a Retry-After hint when one arrives; a typed
// sequence-protocol 409 after a failover is resolved by resyncing
// against GET /v1/sessions/{id} and rewarding the server's open
// decision. Both paths count separately from Errors — a healthy chaos
// run ends with zero Errors and a nonzero Retries/Resyncs tally.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microbandit/internal/serve"
	"microbandit/internal/xrand"
)

// Target is one named endpoint a multi-target run drives.
type Target struct {
	// Name labels the target in the per-target results.
	Name string
	// Handler serves the target's requests (an in-process server, or a
	// NewHTTPTarget proxy for a live one).
	Handler http.Handler
}

// NewHTTPTarget returns a target that proxies every request to a live
// server at base ("http://host:port") over real sockets. Transport
// failures surface as 502 responses, which the workers treat like a
// bare 503: retryable, with backoff.
func NewHTTPTarget(name, base string) Target {
	client := &http.Client{Timeout: 30 * time.Second}
	return Target{Name: name, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		url := base + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	})}
}

// Options configures a load run.
type Options struct {
	// Handler is the server under test, driven in-process. Ignored when
	// Targets is set.
	Handler http.Handler
	// Targets, when non-empty, spreads the workers round-robin across
	// several endpoints (worker i drives Targets[i mod len]). The result
	// then carries one latency summary per target next to the merged
	// numbers.
	Targets []Target
	// Workers is the number of closed-loop workers, each with its own
	// session. Defaults to 8.
	Workers int
	// Duration bounds the measured phase. Defaults to 1s.
	Duration time.Duration
	// Spec is the session spec every worker creates (seeds are
	// diversified per worker). A zero Arms selects 8 DUCB arms.
	Spec serve.Spec
	// Batch switches the workers to /v1/batch: each worker owns Batch
	// sessions and drives them all with one request per round. Zero
	// keeps the scalar step/reward endpoints.
	Batch int
	// Warmup is run before the measured phase and excluded from all
	// counters and histograms. Zero defaults to Duration/10; negative
	// disables the warmup entirely.
	Warmup time.Duration
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Spec.Arms == 0 {
		o.Spec = serve.Spec{Algo: "ducb", Arms: 8}
	}
	if o.Batch < 0 {
		o.Batch = 0
	}
	if max := serve.MaxBatchOps / 2; o.Batch > max {
		o.Batch = max // a round is two ops (reward + step) per session
	}
	switch {
	case o.Warmup < 0:
		o.Warmup = 0
	case o.Warmup == 0:
		o.Warmup = o.Duration / 10
	}
}

// Result is one load run's measurement, in the shape written to
// BENCH_serve.json.
type Result struct {
	Workers int    `json:"workers"`
	Arms    int    `json:"arms"`
	Algo    string `json:"algo"`
	// Batch is sessions per worker in /v1/batch mode (0 = scalar
	// step/reward endpoints).
	Batch int `json:"batch,omitempty"`
	// WarmupSeconds ran before the measured window and is excluded from
	// every number below.
	WarmupSeconds float64 `json:"warmup_seconds"`
	Seconds       float64 `json:"seconds"`
	Decisions     int64   `json:"decisions"`
	Requests      int64   `json:"requests"`
	// DecisionsPerSec is the headline throughput: completed
	// step+reward pairs per second across all workers.
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	// Per-request latency percentiles, microseconds.
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
	// Batch-size-normalized latency: request latency divided by the
	// decisions one request carries (Batch in batch mode; 1/2 in scalar
	// mode, where a decision takes a step and a reward request).
	P50PerDecisionUs float64 `json:"p50_per_decision_us"`
	P99PerDecisionUs float64 `json:"p99_per_decision_us"`
	// Errors counts unexpected failures: non-2xx responses and per-op
	// batch errors that are neither retryable (503/transport → Retries)
	// nor protocol resyncs (409/404 after a failover → Resyncs). A
	// healthy run — chaos included — ends with 0.
	Errors int64 `json:"errors"`
	// Retries counts backed-off retries of 503/transport failures.
	Retries int64 `json:"retries"`
	// Resyncs counts sequence-protocol recoveries: open decisions
	// re-read and rewarded after a failover rewind, and sessions
	// re-created after a promote that predated them.
	Resyncs int64 `json:"resyncs"`
	// Samples is the number of latency samples behind the percentiles.
	Samples int64 `json:"samples"`
	// ZeroSample marks a run whose measured window closed with no
	// samples (duration shorter than the warmup, or everything bounced):
	// the percentiles and throughput above are reported as explicit
	// zeros, not divisions of an empty interval.
	ZeroSample bool `json:"zero_sample,omitempty"`
	// PerTarget breaks the run down by target in multi-target mode.
	PerTarget []TargetResult `json:"per_target,omitempty"`
}

// TargetResult is one target's share of a multi-target run.
type TargetResult struct {
	Name      string  `json:"name"`
	Workers   int     `json:"workers"`
	Requests  int64   `json:"requests"`
	Decisions int64   `json:"decisions"`
	Errors    int64   `json:"errors"`
	Retries   int64   `json:"retries"`
	Resyncs   int64   `json:"resyncs"`
	Samples   int64   `json:"samples"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
}

// Run drives the handler until the duration elapses or ctx is canceled,
// whichever is first, and returns the merged measurement. Session
// creation happens before the clock starts; an interrupt mid-run still
// returns the partial measurement.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts.normalize()
	targets := opts.Targets
	if len(targets) == 0 {
		if opts.Handler == nil {
			return nil, errors.New("loadgen: Options.Handler is nil")
		}
		targets = []Target{{Name: "default", Handler: opts.Handler}}
	}
	for _, tg := range targets {
		if tg.Handler == nil {
			return nil, fmt.Errorf("loadgen: target %q has a nil handler", tg.Name)
		}
	}
	if err := opts.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: spec: %w", err)
	}

	var recording atomic.Bool
	workers := make([]*worker, opts.Workers)
	for i := range workers {
		tg := i % len(targets)
		var w *worker
		var err error
		if opts.Batch > 0 {
			w, err = newBatchWorker(targets[tg].Handler, opts.Spec, i, opts.Batch)
		} else {
			w, err = newWorker(targets[tg].Handler, opts.Spec, i)
		}
		if err != nil {
			return nil, err
		}
		w.rec = &recording
		w.target = tg
		w.rng = xrand.New(uint64(i)*0x9e3779b9 + 1)
		workers[i] = w
	}

	runCtx, cancel := context.WithTimeout(ctx, opts.Warmup+opts.Duration)
	defer cancel()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(runCtx)
		}(w)
	}
	// The workers traffic through the warmup unrecorded; the measured
	// window opens when the flag flips.
	if opts.Warmup > 0 {
		select {
		case <-time.After(opts.Warmup):
		case <-runCtx.Done():
		}
	}
	recording.Store(true)
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{
		Workers:       opts.Workers,
		Arms:          opts.Spec.Arms,
		Algo:          opts.Spec.Algo,
		Batch:         opts.Batch,
		WarmupSeconds: opts.Warmup.Seconds(),
		Seconds:       elapsed,
	}
	var hist histogram
	perTarget := make([]TargetResult, len(targets))
	perHist := make([]histogram, len(targets))
	for i := range targets {
		perTarget[i].Name = targets[i].Name
	}
	for _, w := range workers {
		res.Decisions += w.decisions
		res.Requests += w.requests
		res.Errors += w.errors
		res.Retries += w.retries
		res.Resyncs += w.resyncs
		hist.merge(&w.hist)
		tr := &perTarget[w.target]
		tr.Workers++
		tr.Requests += w.requests
		tr.Decisions += w.decisions
		tr.Errors += w.errors
		tr.Retries += w.retries
		tr.Resyncs += w.resyncs
		perHist[w.target].merge(&w.hist)
	}
	res.Samples = hist.count
	if hist.count == 0 {
		// An empty measured window (duration shorter than the warmup, or
		// every request bounced) reports explicit zeros, never a quantile
		// over nothing.
		res.ZeroSample = true
		if len(targets) > 1 {
			res.PerTarget = perTarget
		}
		return res, nil
	}
	if elapsed > 0 {
		res.DecisionsPerSec = float64(res.Decisions) / elapsed
		res.RequestsPerSec = float64(res.Requests) / elapsed
	}
	res.P50Us = hist.quantile(0.50) / 1000
	res.P99Us = hist.quantile(0.99) / 1000
	res.P999Us = hist.quantile(0.999) / 1000
	res.MaxUs = float64(hist.max) / 1000
	perReq := 0.5 // scalar: a decision is a step request plus a reward request
	if opts.Batch > 0 {
		perReq = float64(opts.Batch)
	}
	res.P50PerDecisionUs = res.P50Us / perReq
	res.P99PerDecisionUs = res.P99Us / perReq
	if len(targets) > 1 {
		for i := range perTarget {
			perTarget[i].Samples = perHist[i].count
			if perHist[i].count > 0 {
				perTarget[i].P50Us = perHist[i].quantile(0.50) / 1000
				perTarget[i].P99Us = perHist[i].quantile(0.99) / 1000
			}
		}
		res.PerTarget = perTarget
	}
	return res, nil
}

// worker is one closed-loop client: a session id, its private histogram,
// and its counters. Nothing here is shared while the run is hot.
//
// The hot loop avoids the httptest helpers: the two requests (step,
// reward) are built once and reused — URL parsed once, bodies swapped in
// place — and responses land in a reusable writer. On one core this
// roughly halves the cost of a decision versus stamping out fresh
// request/recorder pairs, which matters because every µs the generator
// burns is a µs the server under test cannot.
type worker struct {
	h      http.Handler
	base   string
	rec    *atomic.Bool // flips true when the measured window opens
	target int
	rng    *xrand.Rand // backoff jitter
	spec   serve.Spec  // the worker's (seed-diversified) session spec

	// Scalar mode.
	id        string
	stepReq   *http.Request
	rewardReq *http.Request

	// Batch mode (active when len(ids) > 0): the worker's sessions and
	// each one's pending decision awaiting its reward.
	ids      []string
	specs    []serve.Spec
	pend     []pending
	batchReq *http.Request
	// Per-round bookkeeping for error recovery: which session each
	// reward op belongs to, and which sessions need an out-of-band
	// resync or re-create after the round.
	rewardIdx  []int
	needInfo   []bool
	needCreate []bool

	body   memBody
	reqBuf []byte
	resp   respWriter

	attempt   int // consecutive retryable failures, shapes the backoff
	decisions int64
	requests  int64
	errors    int64
	retries   int64
	resyncs   int64
	hist      histogram
}

// pending is one session's open decision between rounds.
type pending struct {
	has bool
	seq uint64
	arm int
}

func (w *worker) run(ctx context.Context) {
	if len(w.ids) > 0 {
		w.runBatch(ctx)
		return
	}
	w.runScalar(ctx)
}

// memBody is a reusable request body (an io.ReadCloser over a byte
// slice).
type memBody struct {
	data []byte
	off  int
}

func (b *memBody) reset(data []byte) { b.data, b.off = data, 0 }

// Read implements io.Reader.
func (b *memBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// Close implements io.Closer.
func (b *memBody) Close() error { return nil }

// respWriter is a minimal reusable http.ResponseWriter.
type respWriter struct {
	hdr  http.Header
	code int
	buf  []byte
}

// Header implements http.ResponseWriter.
func (w *respWriter) Header() http.Header { return w.hdr }

// WriteHeader implements http.ResponseWriter.
func (w *respWriter) WriteHeader(code int) { w.code = code }

// Write implements http.ResponseWriter.
func (w *respWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *respWriter) reset() {
	w.code = http.StatusOK
	w.buf = w.buf[:0]
	clear(w.hdr)
}

// createSession posts one session spec and returns the new id.
func createSession(h http.Handler, spec serve.Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(string(body)))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusCreated {
		return "", fmt.Errorf("loadgen: create session: status %d: %s", rw.Code, rw.Body.String())
	}
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &cr); err != nil {
		return "", fmt.Errorf("loadgen: create session: %w", err)
	}
	return cr.ID, nil
}

// createSessionAt re-creates a session under a known id via the
// idempotent PUT — how a worker resurrects its session after a failover
// promoted a replica that never saw it. The restarted session replays
// the same decision stream the original produced (same id, same spec,
// same seed).
func createSessionAt(h http.Handler, id string, spec serve.Spec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req := httptest.NewRequest("PUT", "/v1/sessions/"+id, strings.NewReader(string(body)))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusCreated && rw.Code != http.StatusOK {
		return fmt.Errorf("loadgen: recreate session %s: status %d: %s", id, rw.Code, rw.Body.String())
	}
	return nil
}

// newWorker creates a scalar worker's session (outside the measured
// phase).
func newWorker(h http.Handler, spec serve.Spec, idx int) (*worker, error) {
	spec.Seed = spec.Seed*1000 + uint64(idx) + 1
	id, err := createSession(h, spec)
	if err != nil {
		return nil, err
	}
	w := &worker{h: h, base: "/v1/sessions/" + id, id: id, spec: spec}
	w.stepReq = httptest.NewRequest("POST", w.base+"/step", nil)
	w.stepReq.Body = http.NoBody
	w.rewardReq = httptest.NewRequest("POST", w.base+"/reward", nil)
	w.rewardReq.Body = &w.body
	w.resp.hdr = make(http.Header, 2)
	return w, nil
}

// newBatchWorker creates a worker owning batch sessions, all driven
// through /v1/batch.
func newBatchWorker(h http.Handler, spec serve.Spec, idx, batch int) (*worker, error) {
	w := &worker{
		h: h, ids: make([]string, batch), specs: make([]serve.Spec, batch),
		pend: make([]pending, batch), rewardIdx: make([]int, 0, batch),
		needInfo: make([]bool, batch), needCreate: make([]bool, batch),
	}
	for j := range w.ids {
		sp := spec
		sp.Seed = spec.Seed*100_000 + uint64(idx*batch+j) + 1
		id, err := createSession(h, sp)
		if err != nil {
			return nil, err
		}
		w.ids[j] = id
		w.specs[j] = sp
	}
	w.batchReq = httptest.NewRequest("POST", "/v1/batch", nil)
	w.batchReq.Body = &w.body
	w.resp.hdr = make(http.Header, 2)
	return w, nil
}

// retryable reports whether a status is worth backing off and retrying:
// 503 (draining node, dead node, mid-failover router) and 502 (the
// HTTP-proxy target's transport failure).
func retryable(code int) bool {
	return code == http.StatusServiceUnavailable || code == http.StatusBadGateway
}

// Backoff shape for retryable failures.
const (
	backoffBase = 2 * time.Millisecond
	backoffMax  = 250 * time.Millisecond
	// retryAfterCap bounds how long a Retry-After hint is honored; load
	// generation should probe recovery, not nap through it.
	retryAfterCap = 2 * time.Second
)

// backoff sleeps before the next retry: the server's Retry-After hint
// when one arrived (a draining node knows its own timeline), otherwise
// jittered exponential in the worker's consecutive-failure count. The
// jitter decorrelates the worker fleet so a failover is not greeted by
// a synchronized stampede. Returns false when ctx ended mid-sleep.
func (w *worker) backoff(ctx context.Context) bool {
	d := time.Duration(0)
	if ra := w.resp.hdr.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
			if d > retryAfterCap {
				d = retryAfterCap
			}
		}
	}
	if d == 0 {
		d = backoffBase << uint(w.attempt)
		if d > backoffMax {
			d = backoffMax
		}
		d = time.Duration(float64(d) * (0.5 + w.rng.Float64())) // [0.5, 1.5)
	}
	if w.attempt < 8 {
		w.attempt++
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// errCode extracts the typed code from a serve error envelope (cold
// path; allocation is fine here).
func errCode(body []byte) string {
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &eb) != nil {
		return ""
	}
	return eb.Error.Code
}

// sessionInfo reads a session's current protocol state.
func sessionInfo(h http.Handler, id string) (seq uint64, open bool, arm int, code int) {
	req := httptest.NewRequest("GET", "/v1/sessions/"+id, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		return 0, false, 0, rw.Code
	}
	var info struct {
		Seq  uint64 `json:"seq"`
		Open bool   `json:"open"`
		Arm  int    `json:"arm"`
	}
	if json.Unmarshal(rw.Body.Bytes(), &info) != nil {
		return 0, false, 0, http.StatusInternalServerError
	}
	return info.Seq, info.Open, info.Arm, http.StatusOK
}

// runScalar is the scalar closed loop. It checks ctx between decisions,
// not between the step and its reward, so a canceled run never leaves
// the session with an open decision. Failure handling mirrors what any
// well-behaved cluster client must do: back off on 503s, resync the
// sequence protocol on 409s, re-create the session on 404s — and only
// count an error when none of those apply.
func (w *worker) runScalar(ctx context.Context) {
	var stepResp struct {
		Seq uint64 `json:"seq"`
		Arm int    `json:"arm"`
	}
	for ctx.Err() == nil {
		recording := w.rec.Load()
		body, code := w.do(w.stepReq, recording)
		if code != http.StatusOK {
			w.recoverScalar(ctx, body, code, recording)
			continue
		}
		w.attempt = 0
		if err := json.Unmarshal(body, &stepResp); err != nil {
			if recording {
				w.errors++
			}
			continue
		}
		if !w.rewardScalar(stepResp.Seq, stepResp.Arm, recording) {
			continue
		}
		if recording {
			w.decisions++
		}
	}
}

// rewardScalar posts the deterministic reward for one open decision.
func (w *worker) rewardScalar(seq uint64, arm int, recording bool) bool {
	b := w.reqBuf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"reward":`...)
	b = strconv.AppendFloat(b, syntheticReward(arm, seq), 'g', -1, 64)
	b = append(b, '}')
	w.reqBuf = b
	w.body.reset(b)
	body, code := w.do(w.rewardReq, recording)
	if code == http.StatusOK {
		return true
	}
	switch {
	case retryable(code):
		// The reward will be re-derived after a resync; nothing to keep.
		if recording {
			w.retries++
		}
	case code == http.StatusConflict || code == http.StatusNotFound:
		// no_open_step / seq_mismatch / deleted session: the next step
		// (or its step_open recovery) resolves it.
		if recording {
			w.resyncs++
		}
		_ = body
	default:
		if recording {
			w.errors++
		}
	}
	return false
}

// recoverScalar resolves a failed step request.
func (w *worker) recoverScalar(ctx context.Context, body []byte, code int, recording bool) {
	switch {
	case retryable(code):
		if recording {
			w.retries++
		}
		w.backoff(ctx)
	case code == http.StatusConflict && errCode(body) == serve.CodeStepOpen:
		// A decision is open server-side that this client never saw the
		// reward ack for (lost response, or a failover rewound the
		// session to its last checkpoint). Read it back and reward it
		// with the same deterministic function — the stream continues
		// byte-identically.
		seq, open, arm, st := sessionInfo(w.h, w.id)
		if st == http.StatusOK && open {
			w.rewardScalar(seq, arm, recording)
		}
		if recording {
			w.resyncs++
		}
	case code == http.StatusNotFound:
		// The session predates the replica's first committed checkpoint:
		// re-create it under the same id and spec; the replayed stream
		// is identical by determinism.
		if err := createSessionAt(w.h, w.id, w.spec); err == nil && recording {
			w.resyncs++
		} else if recording && err != nil {
			w.errors++
		}
	default:
		if recording {
			w.errors++
		}
	}
}

// runBatch is the batch closed loop: one request per round carrying the
// previous round's rewards (first, so the server's kernel plane sees the
// reward-then-step pattern per session) and a fresh step for every
// session.
func (w *worker) runBatch(ctx context.Context) {
	for ctx.Err() == nil {
		recording := w.rec.Load()
		b := append(w.reqBuf[:0], `{"ops":[`...)
		n := 0
		w.rewardIdx = w.rewardIdx[:0]
		for j := range w.ids {
			p := &w.pend[j]
			if !p.has {
				continue
			}
			if n > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"id":"`...)
			b = append(b, w.ids[j]...)
			b = append(b, `","seq":`...)
			b = strconv.AppendUint(b, p.seq, 10)
			b = append(b, `,"reward":`...)
			b = strconv.AppendFloat(b, syntheticReward(p.arm, p.seq), 'g', -1, 64)
			b = append(b, '}')
			n++
			w.rewardIdx = append(w.rewardIdx, j)
		}
		nRewards := len(w.rewardIdx)
		for j := range w.ids {
			if n > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"id":"`...)
			b = append(b, w.ids[j]...)
			b = append(b, `","step":true}`...)
			n++
		}
		b = append(b, `]}`...)
		w.reqBuf = b
		w.body.reset(b)
		body, code := w.do(w.batchReq, recording)
		if code != http.StatusOK {
			if retryable(code) {
				// Pending rewards survive the retry: the same body is
				// rebuilt next round, and the sequence protocol dedupes
				// anything the server did manage to apply.
				if recording {
					w.retries++
				}
				w.backoff(ctx)
			} else if recording {
				w.errors++
			}
			continue
		}
		w.attempt = 0
		w.applyBatchResults(body, nRewards, recording)
		w.resolveBatch(recording)
	}
}

// resolveBatch runs the out-of-band recoveries a round's per-op errors
// called for: resync sessions with an unexpected open decision (reward
// it deterministically next round), re-create sessions a promoted
// replica never had.
func (w *worker) resolveBatch(recording bool) {
	for j := range w.ids {
		if w.needInfo[j] {
			w.needInfo[j] = false
			seq, open, arm, st := sessionInfo(w.h, w.ids[j])
			switch {
			case st == http.StatusOK && open:
				w.pend[j] = pending{has: true, seq: seq, arm: arm}
			case st == http.StatusNotFound:
				w.needCreate[j] = true
			default:
				w.pend[j].has = false
			}
			if recording {
				w.resyncs++
			}
		}
		if w.needCreate[j] {
			w.needCreate[j] = false
			w.pend[j].has = false
			if err := createSessionAt(w.h, w.ids[j], w.specs[j]); err == nil {
				if recording {
					w.resyncs++
				}
			} else if recording {
				w.errors++
			}
		}
	}
}

// applyBatchResults walks a /v1/batch response in op order: the first
// nRewards results close the previous round's decisions, the rest are
// this round's steps (result i+nRewards belongs to session i). The
// scanner is hand-rolled for the same reason the server's parser is: at
// high batch sizes an encoding/json decode in the generator would cost
// more than the decisions being measured.
func (w *worker) applyBatchResults(body []byte, nRewards int, recording bool) {
	const prefix = `{"results":[`
	if !bytes.HasPrefix(body, []byte(prefix)) {
		w.batchDesync(recording)
		return
	}
	pos := len(prefix)
	for ri := 0; ; ri++ {
		if pos >= len(body) {
			w.batchDesync(recording)
			return
		}
		if body[pos] == ']' {
			if ri != nRewards+len(w.ids) {
				w.batchDesync(recording)
			}
			return
		}
		if ri > 0 {
			if body[pos] != ',' {
				w.batchDesync(recording)
				return
			}
			pos++
		}
		switch {
		case hasAt(body, pos, `{"seq":`):
			seq, p, ok := parseUintAt(body, pos+len(`{"seq":`))
			if !ok || !hasAt(body, p, `,"arm":`) {
				w.batchDesync(recording)
				return
			}
			arm, p, ok := parseUintAt(body, p+len(`,"arm":`))
			if !ok || !hasAt(body, p, `}`) {
				w.batchDesync(recording)
				return
			}
			pos = p + 1
			if j := ri - nRewards; j >= 0 && j < len(w.pend) {
				w.pend[j] = pending{has: true, seq: seq, arm: int(arm)}
			}
		case hasAt(body, pos, `{"steps":`):
			_, p, ok := parseUintAt(body, pos+len(`{"steps":`))
			if !ok || !hasAt(body, p, `}`) {
				w.batchDesync(recording)
				return
			}
			pos = p + 1
			if ri < nRewards && recording {
				w.decisions++
			}
		case hasAt(body, pos, `{"error":`):
			end := skipJSONValue(body, pos)
			if end < 0 {
				w.batchDesync(recording)
				return
			}
			code := batchErrCodeAt(body, pos)
			pos = end
			w.classifyOpError(ri, nRewards, code, recording)
		default:
			w.batchDesync(recording)
			return
		}
	}
}

// classifyOpError sorts one per-op batch error into the recovery it
// calls for. Result ri is a reward op when ri < nRewards (its session is
// rewardIdx[ri]), a step op for session ri - nRewards otherwise.
func (w *worker) classifyOpError(ri, nRewards int, code string, recording bool) {
	var j int
	isReward := ri < nRewards
	if isReward {
		if ri >= len(w.rewardIdx) {
			return
		}
		j = w.rewardIdx[ri]
	} else {
		j = ri - nRewards
		if j >= len(w.ids) {
			return
		}
	}
	switch code {
	case serve.CodeStepOpen:
		// A step bounced off an open decision this client never closed —
		// the failover-rewind signature. Re-read and reward it after the
		// round.
		w.needInfo[j] = true
	case serve.CodeNoOpenStep, serve.CodeSeqMismatch:
		// A stale reward (duplicate delivery, or the open decision moved
		// under a failover). Drop it; the step path re-learns the truth.
		w.pend[j].has = false
		if recording {
			w.resyncs++
		}
	case serve.CodeNotFound:
		w.needCreate[j] = true
	case serve.CodeUnavailable, serve.CodeDraining:
		// The op's owner is mid-failover or draining; keep the pending
		// reward and let the next round retry it.
		if recording {
			w.retries++
		}
	default:
		w.pend[j].has = false
		if recording {
			w.errors++
		}
	}
}

// batchErrCodeAt extracts the code from an error result element without
// allocating (the hot loop stays zero-alloc even while chaos rains).
func batchErrCodeAt(b []byte, pos int) string {
	const prefix = `{"error":{"code":"`
	if !hasAt(b, pos, prefix) {
		return ""
	}
	start := pos + len(prefix)
	end := start
	for end < len(b) && b[end] != '"' {
		end++
	}
	switch {
	case hasAt(b, start, serve.CodeStepOpen) && end-start == len(serve.CodeStepOpen):
		return serve.CodeStepOpen
	case hasAt(b, start, serve.CodeNoOpenStep) && end-start == len(serve.CodeNoOpenStep):
		return serve.CodeNoOpenStep
	case hasAt(b, start, serve.CodeSeqMismatch) && end-start == len(serve.CodeSeqMismatch):
		return serve.CodeSeqMismatch
	case hasAt(b, start, serve.CodeNotFound) && end-start == len(serve.CodeNotFound):
		return serve.CodeNotFound
	case hasAt(b, start, serve.CodeUnavailable) && end-start == len(serve.CodeUnavailable):
		return serve.CodeUnavailable
	case hasAt(b, start, serve.CodeDraining) && end-start == len(serve.CodeDraining):
		return serve.CodeDraining
	}
	return string(b[start:end])
}

// batchDesync records a malformed or truncated batch response and drops
// all pending state: better to restart the sessions' decision protocol
// than to reward with stale sequence numbers.
func (w *worker) batchDesync(recording bool) {
	if recording {
		w.errors++
	}
	for j := range w.pend {
		w.pend[j].has = false
	}
}

func hasAt(b []byte, pos int, lit string) bool {
	return pos+len(lit) <= len(b) && string(b[pos:pos+len(lit)]) == lit
}

// parseUintAt reads a decimal run starting at pos.
func parseUintAt(b []byte, pos int) (uint64, int, bool) {
	start := pos
	var n uint64
	for pos < len(b) && b[pos] >= '0' && b[pos] <= '9' {
		n = n*10 + uint64(b[pos]-'0')
		pos++
	}
	return n, pos, pos > start
}

// skipJSONValue skips one balanced JSON object/array starting at pos,
// returning the index just past it (-1 if unbalanced).
func skipJSONValue(b []byte, pos int) int {
	depth, inStr, esc := 0, false, false
	for ; pos < len(b); pos++ {
		c := b[pos]
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{', '[':
			depth++
		case '}', ']':
			depth--
			if depth == 0 {
				return pos + 1
			}
		}
	}
	return -1
}

// do issues one in-process request, timing the full handler invocation.
// Nothing is recorded during warmup.
func (w *worker) do(req *http.Request, recording bool) ([]byte, int) {
	w.resp.reset()
	t0 := time.Now()
	w.h.ServeHTTP(&w.resp, req)
	if recording {
		w.hist.record(time.Since(t0).Nanoseconds())
		w.requests++
	}
	return w.resp.buf, w.resp.code
}

// syntheticReward gives arms distinct stationary means with a
// deterministic per-step wobble, so the agents under load learn a real
// preference instead of noise.
func syntheticReward(arm int, seq uint64) float64 {
	base := 0.3 + 0.4*float64(arm%4)/4
	return base + 0.1*math.Sin(float64(seq)*0.05)
}

// ---------------------------------------------------------------------
// Latency histogram

// Fixed-width two-tier buckets: 100 ns resolution below 1 ms, 10 µs
// resolution up to 100 ms, one overflow bucket above. Recording is two
// integer ops; quantiles interpolate within a bucket.
const (
	fineWidth     = 100       // ns per bucket below fineLimit
	fineLimit     = 1_000_000 // 1 ms
	fineBuckets   = fineLimit / fineWidth
	coarseWidth   = 10_000      // ns per bucket up to coarseLimit
	coarseLimit   = 100_000_000 // 100 ms
	coarseBuckets = (coarseLimit - fineLimit) / coarseWidth
)

type histogram struct {
	fine     [fineBuckets]int64
	coarse   [coarseBuckets]int64
	overflow int64
	count    int64
	max      int64
}

func (h *histogram) record(ns int64) {
	h.count++
	if ns > h.max {
		h.max = ns
	}
	switch {
	case ns < 0:
		h.fine[0]++
	case ns < fineLimit:
		h.fine[ns/fineWidth]++
	case ns < coarseLimit:
		h.coarse[(ns-fineLimit)/coarseWidth]++
	default:
		h.overflow++
	}
}

func (h *histogram) merge(o *histogram) {
	for i, v := range o.fine {
		h.fine[i] += v
	}
	for i, v := range o.coarse {
		h.coarse[i] += v
	}
	h.overflow += o.overflow
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the latency in nanoseconds at quantile q in [0, 1].
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for i, v := range h.fine {
		if seen+v > rank {
			return float64(i)*fineWidth + fineWidth/2
		}
		seen += v
	}
	for i, v := range h.coarse {
		if seen+v > rank {
			return fineLimit + float64(i)*coarseWidth + coarseWidth/2
		}
		seen += v
	}
	return float64(h.max)
}
