// Package loadgen is the closed-loop load generator for the serve API.
// Each worker owns one session and drives it as fast as the server
// answers: step, observe the arm, post a deterministic reward, repeat.
// In batch mode (Options.Batch > 0) a worker owns Batch sessions instead
// and advances all of them with one POST /v1/batch per round — the
// previous round's rewards plus the next steps in a single body.
// Per-request latencies land in fixed-width histograms (one per worker,
// merged at the end, so the measurement path takes no locks), from which
// the result reports p50/p99/p999 and throughput. A warmup window at the
// start of the run is excluded from every counter and histogram, so
// cold-start effects (first allocations, branch training) never pollute
// the tail percentiles.
//
// The generator speaks to any http.Handler. Handing it an in-process
// *serve.Server measures the decision engine itself — no sockets, no
// kernel — which is the configuration the repo's reference numbers in
// BENCH_serve.json use; handing it an http.Client-backed proxy handler
// measures a live server instead.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microbandit/internal/serve"
)

// Options configures a load run.
type Options struct {
	// Handler is the server under test, driven in-process.
	Handler http.Handler
	// Workers is the number of closed-loop workers, each with its own
	// session. Defaults to 8.
	Workers int
	// Duration bounds the measured phase. Defaults to 1s.
	Duration time.Duration
	// Spec is the session spec every worker creates (seeds are
	// diversified per worker). A zero Arms selects 8 DUCB arms.
	Spec serve.Spec
	// Batch switches the workers to /v1/batch: each worker owns Batch
	// sessions and drives them all with one request per round. Zero
	// keeps the scalar step/reward endpoints.
	Batch int
	// Warmup is run before the measured phase and excluded from all
	// counters and histograms. Zero defaults to Duration/10; negative
	// disables the warmup entirely.
	Warmup time.Duration
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Spec.Arms == 0 {
		o.Spec = serve.Spec{Algo: "ducb", Arms: 8}
	}
	if o.Batch < 0 {
		o.Batch = 0
	}
	if max := serve.MaxBatchOps / 2; o.Batch > max {
		o.Batch = max // a round is two ops (reward + step) per session
	}
	switch {
	case o.Warmup < 0:
		o.Warmup = 0
	case o.Warmup == 0:
		o.Warmup = o.Duration / 10
	}
}

// Result is one load run's measurement, in the shape written to
// BENCH_serve.json.
type Result struct {
	Workers int    `json:"workers"`
	Arms    int    `json:"arms"`
	Algo    string `json:"algo"`
	// Batch is sessions per worker in /v1/batch mode (0 = scalar
	// step/reward endpoints).
	Batch int `json:"batch,omitempty"`
	// WarmupSeconds ran before the measured window and is excluded from
	// every number below.
	WarmupSeconds float64 `json:"warmup_seconds"`
	Seconds       float64 `json:"seconds"`
	Decisions     int64   `json:"decisions"`
	Requests      int64   `json:"requests"`
	// DecisionsPerSec is the headline throughput: completed
	// step+reward pairs per second across all workers.
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	// Per-request latency percentiles, microseconds.
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
	// Batch-size-normalized latency: request latency divided by the
	// decisions one request carries (Batch in batch mode; 1/2 in scalar
	// mode, where a decision takes a step and a reward request).
	P50PerDecisionUs float64 `json:"p50_per_decision_us"`
	P99PerDecisionUs float64 `json:"p99_per_decision_us"`
	// Errors counts non-2xx responses and per-op batch errors (0 on a
	// healthy run).
	Errors int64 `json:"errors"`
}

// Run drives the handler until the duration elapses or ctx is canceled,
// whichever is first, and returns the merged measurement. Session
// creation happens before the clock starts; an interrupt mid-run still
// returns the partial measurement.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts.normalize()
	if opts.Handler == nil {
		return nil, errors.New("loadgen: Options.Handler is nil")
	}
	if err := opts.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: spec: %w", err)
	}

	var recording atomic.Bool
	workers := make([]*worker, opts.Workers)
	for i := range workers {
		var w *worker
		var err error
		if opts.Batch > 0 {
			w, err = newBatchWorker(opts.Handler, opts.Spec, i, opts.Batch)
		} else {
			w, err = newWorker(opts.Handler, opts.Spec, i)
		}
		if err != nil {
			return nil, err
		}
		w.rec = &recording
		workers[i] = w
	}

	runCtx, cancel := context.WithTimeout(ctx, opts.Warmup+opts.Duration)
	defer cancel()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(runCtx)
		}(w)
	}
	// The workers traffic through the warmup unrecorded; the measured
	// window opens when the flag flips.
	if opts.Warmup > 0 {
		select {
		case <-time.After(opts.Warmup):
		case <-runCtx.Done():
		}
	}
	recording.Store(true)
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{
		Workers:       opts.Workers,
		Arms:          opts.Spec.Arms,
		Algo:          opts.Spec.Algo,
		Batch:         opts.Batch,
		WarmupSeconds: opts.Warmup.Seconds(),
		Seconds:       elapsed,
	}
	var hist histogram
	for _, w := range workers {
		res.Decisions += w.decisions
		res.Requests += w.requests
		res.Errors += w.errors
		hist.merge(&w.hist)
	}
	if elapsed > 0 {
		res.DecisionsPerSec = float64(res.Decisions) / elapsed
		res.RequestsPerSec = float64(res.Requests) / elapsed
	}
	res.P50Us = hist.quantile(0.50) / 1000
	res.P99Us = hist.quantile(0.99) / 1000
	res.P999Us = hist.quantile(0.999) / 1000
	res.MaxUs = float64(hist.max) / 1000
	perReq := 0.5 // scalar: a decision is a step request plus a reward request
	if opts.Batch > 0 {
		perReq = float64(opts.Batch)
	}
	res.P50PerDecisionUs = res.P50Us / perReq
	res.P99PerDecisionUs = res.P99Us / perReq
	return res, nil
}

// worker is one closed-loop client: a session id, its private histogram,
// and its counters. Nothing here is shared while the run is hot.
//
// The hot loop avoids the httptest helpers: the two requests (step,
// reward) are built once and reused — URL parsed once, bodies swapped in
// place — and responses land in a reusable writer. On one core this
// roughly halves the cost of a decision versus stamping out fresh
// request/recorder pairs, which matters because every µs the generator
// burns is a µs the server under test cannot.
type worker struct {
	h    http.Handler
	base string
	rec  *atomic.Bool // flips true when the measured window opens

	// Scalar mode.
	stepReq   *http.Request
	rewardReq *http.Request

	// Batch mode (active when len(ids) > 0): the worker's sessions and
	// each one's pending decision awaiting its reward.
	ids      []string
	pend     []pending
	batchReq *http.Request

	body   memBody
	reqBuf []byte
	resp   respWriter

	decisions int64
	requests  int64
	errors    int64
	hist      histogram
}

// pending is one session's open decision between rounds.
type pending struct {
	has bool
	seq uint64
	arm int
}

func (w *worker) run(ctx context.Context) {
	if len(w.ids) > 0 {
		w.runBatch(ctx)
		return
	}
	w.runScalar(ctx)
}

// memBody is a reusable request body (an io.ReadCloser over a byte
// slice).
type memBody struct {
	data []byte
	off  int
}

func (b *memBody) reset(data []byte) { b.data, b.off = data, 0 }

// Read implements io.Reader.
func (b *memBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// Close implements io.Closer.
func (b *memBody) Close() error { return nil }

// respWriter is a minimal reusable http.ResponseWriter.
type respWriter struct {
	hdr  http.Header
	code int
	buf  []byte
}

// Header implements http.ResponseWriter.
func (w *respWriter) Header() http.Header { return w.hdr }

// WriteHeader implements http.ResponseWriter.
func (w *respWriter) WriteHeader(code int) { w.code = code }

// Write implements http.ResponseWriter.
func (w *respWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *respWriter) reset() {
	w.code = http.StatusOK
	w.buf = w.buf[:0]
	clear(w.hdr)
}

// createSession posts one session spec and returns the new id.
func createSession(h http.Handler, spec serve.Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(string(body)))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusCreated {
		return "", fmt.Errorf("loadgen: create session: status %d: %s", rw.Code, rw.Body.String())
	}
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &cr); err != nil {
		return "", fmt.Errorf("loadgen: create session: %w", err)
	}
	return cr.ID, nil
}

// newWorker creates a scalar worker's session (outside the measured
// phase).
func newWorker(h http.Handler, spec serve.Spec, idx int) (*worker, error) {
	spec.Seed = spec.Seed*1000 + uint64(idx) + 1
	id, err := createSession(h, spec)
	if err != nil {
		return nil, err
	}
	w := &worker{h: h, base: "/v1/sessions/" + id}
	w.stepReq = httptest.NewRequest("POST", w.base+"/step", nil)
	w.stepReq.Body = http.NoBody
	w.rewardReq = httptest.NewRequest("POST", w.base+"/reward", nil)
	w.rewardReq.Body = &w.body
	w.resp.hdr = make(http.Header, 2)
	return w, nil
}

// newBatchWorker creates a worker owning batch sessions, all driven
// through /v1/batch.
func newBatchWorker(h http.Handler, spec serve.Spec, idx, batch int) (*worker, error) {
	w := &worker{h: h, ids: make([]string, batch), pend: make([]pending, batch)}
	for j := range w.ids {
		sp := spec
		sp.Seed = spec.Seed*100_000 + uint64(idx*batch+j) + 1
		id, err := createSession(h, sp)
		if err != nil {
			return nil, err
		}
		w.ids[j] = id
	}
	w.batchReq = httptest.NewRequest("POST", "/v1/batch", nil)
	w.batchReq.Body = &w.body
	w.resp.hdr = make(http.Header, 2)
	return w, nil
}

// runScalar is the scalar closed loop. It checks ctx between decisions,
// not between the step and its reward, so a canceled run never leaves
// the session with an open decision.
func (w *worker) runScalar(ctx context.Context) {
	var stepResp struct {
		Seq uint64 `json:"seq"`
		Arm int    `json:"arm"`
	}
	for ctx.Err() == nil {
		recording := w.rec.Load()
		body, code := w.do(w.stepReq, recording)
		if code != http.StatusOK {
			if recording {
				w.errors++
			}
			continue
		}
		if err := json.Unmarshal(body, &stepResp); err != nil {
			if recording {
				w.errors++
			}
			continue
		}
		reward := syntheticReward(stepResp.Arm, stepResp.Seq)
		b := w.reqBuf[:0]
		b = append(b, `{"seq":`...)
		b = strconv.AppendUint(b, stepResp.Seq, 10)
		b = append(b, `,"reward":`...)
		b = strconv.AppendFloat(b, reward, 'g', -1, 64)
		b = append(b, '}')
		w.reqBuf = b
		w.body.reset(b)
		if _, code := w.do(w.rewardReq, recording); code != http.StatusOK {
			if recording {
				w.errors++
			}
			continue
		}
		if recording {
			w.decisions++
		}
	}
}

// runBatch is the batch closed loop: one request per round carrying the
// previous round's rewards (first, so the server's kernel plane sees the
// reward-then-step pattern per session) and a fresh step for every
// session.
func (w *worker) runBatch(ctx context.Context) {
	for ctx.Err() == nil {
		recording := w.rec.Load()
		b := append(w.reqBuf[:0], `{"ops":[`...)
		n, nRewards := 0, 0
		for j := range w.ids {
			p := &w.pend[j]
			if !p.has {
				continue
			}
			if n > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"id":"`...)
			b = append(b, w.ids[j]...)
			b = append(b, `","seq":`...)
			b = strconv.AppendUint(b, p.seq, 10)
			b = append(b, `,"reward":`...)
			b = strconv.AppendFloat(b, syntheticReward(p.arm, p.seq), 'g', -1, 64)
			b = append(b, '}')
			n++
			nRewards++
		}
		for j := range w.ids {
			if n > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"id":"`...)
			b = append(b, w.ids[j]...)
			b = append(b, `","step":true}`...)
			n++
		}
		b = append(b, `]}`...)
		w.reqBuf = b
		w.body.reset(b)
		body, code := w.do(w.batchReq, recording)
		if code != http.StatusOK {
			if recording {
				w.errors++
			}
			continue
		}
		w.applyBatchResults(body, nRewards, recording)
	}
}

// applyBatchResults walks a /v1/batch response in op order: the first
// nRewards results close the previous round's decisions, the rest are
// this round's steps (result i+nRewards belongs to session i). The
// scanner is hand-rolled for the same reason the server's parser is: at
// high batch sizes an encoding/json decode in the generator would cost
// more than the decisions being measured.
func (w *worker) applyBatchResults(body []byte, nRewards int, recording bool) {
	const prefix = `{"results":[`
	if !bytes.HasPrefix(body, []byte(prefix)) {
		w.batchDesync(recording)
		return
	}
	pos := len(prefix)
	for ri := 0; ; ri++ {
		if pos >= len(body) {
			w.batchDesync(recording)
			return
		}
		if body[pos] == ']' {
			if ri != nRewards+len(w.ids) {
				w.batchDesync(recording)
			}
			return
		}
		if ri > 0 {
			if body[pos] != ',' {
				w.batchDesync(recording)
				return
			}
			pos++
		}
		switch {
		case hasAt(body, pos, `{"seq":`):
			seq, p, ok := parseUintAt(body, pos+len(`{"seq":`))
			if !ok || !hasAt(body, p, `,"arm":`) {
				w.batchDesync(recording)
				return
			}
			arm, p, ok := parseUintAt(body, p+len(`,"arm":`))
			if !ok || !hasAt(body, p, `}`) {
				w.batchDesync(recording)
				return
			}
			pos = p + 1
			if j := ri - nRewards; j >= 0 && j < len(w.pend) {
				w.pend[j] = pending{has: true, seq: seq, arm: int(arm)}
			}
		case hasAt(body, pos, `{"steps":`):
			_, p, ok := parseUintAt(body, pos+len(`{"steps":`))
			if !ok || !hasAt(body, p, `}`) {
				w.batchDesync(recording)
				return
			}
			pos = p + 1
			if ri < nRewards && recording {
				w.decisions++
			}
		case hasAt(body, pos, `{"error":`):
			end := skipJSONValue(body, pos)
			if end < 0 {
				w.batchDesync(recording)
				return
			}
			pos = end
			if recording {
				w.errors++
			}
			if j := ri - nRewards; j >= 0 && j < len(w.pend) {
				w.pend[j].has = false
			}
		default:
			w.batchDesync(recording)
			return
		}
	}
}

// batchDesync records a malformed or truncated batch response and drops
// all pending state: better to restart the sessions' decision protocol
// than to reward with stale sequence numbers.
func (w *worker) batchDesync(recording bool) {
	if recording {
		w.errors++
	}
	for j := range w.pend {
		w.pend[j].has = false
	}
}

func hasAt(b []byte, pos int, lit string) bool {
	return pos+len(lit) <= len(b) && string(b[pos:pos+len(lit)]) == lit
}

// parseUintAt reads a decimal run starting at pos.
func parseUintAt(b []byte, pos int) (uint64, int, bool) {
	start := pos
	var n uint64
	for pos < len(b) && b[pos] >= '0' && b[pos] <= '9' {
		n = n*10 + uint64(b[pos]-'0')
		pos++
	}
	return n, pos, pos > start
}

// skipJSONValue skips one balanced JSON object/array starting at pos,
// returning the index just past it (-1 if unbalanced).
func skipJSONValue(b []byte, pos int) int {
	depth, inStr, esc := 0, false, false
	for ; pos < len(b); pos++ {
		c := b[pos]
		if inStr {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{', '[':
			depth++
		case '}', ']':
			depth--
			if depth == 0 {
				return pos + 1
			}
		}
	}
	return -1
}

// do issues one in-process request, timing the full handler invocation.
// Nothing is recorded during warmup.
func (w *worker) do(req *http.Request, recording bool) ([]byte, int) {
	w.resp.reset()
	t0 := time.Now()
	w.h.ServeHTTP(&w.resp, req)
	if recording {
		w.hist.record(time.Since(t0).Nanoseconds())
		w.requests++
	}
	return w.resp.buf, w.resp.code
}

// syntheticReward gives arms distinct stationary means with a
// deterministic per-step wobble, so the agents under load learn a real
// preference instead of noise.
func syntheticReward(arm int, seq uint64) float64 {
	base := 0.3 + 0.4*float64(arm%4)/4
	return base + 0.1*math.Sin(float64(seq)*0.05)
}

// ---------------------------------------------------------------------
// Latency histogram

// Fixed-width two-tier buckets: 100 ns resolution below 1 ms, 10 µs
// resolution up to 100 ms, one overflow bucket above. Recording is two
// integer ops; quantiles interpolate within a bucket.
const (
	fineWidth     = 100       // ns per bucket below fineLimit
	fineLimit     = 1_000_000 // 1 ms
	fineBuckets   = fineLimit / fineWidth
	coarseWidth   = 10_000      // ns per bucket up to coarseLimit
	coarseLimit   = 100_000_000 // 100 ms
	coarseBuckets = (coarseLimit - fineLimit) / coarseWidth
)

type histogram struct {
	fine     [fineBuckets]int64
	coarse   [coarseBuckets]int64
	overflow int64
	count    int64
	max      int64
}

func (h *histogram) record(ns int64) {
	h.count++
	if ns > h.max {
		h.max = ns
	}
	switch {
	case ns < 0:
		h.fine[0]++
	case ns < fineLimit:
		h.fine[ns/fineWidth]++
	case ns < coarseLimit:
		h.coarse[(ns-fineLimit)/coarseWidth]++
	default:
		h.overflow++
	}
}

func (h *histogram) merge(o *histogram) {
	for i, v := range o.fine {
		h.fine[i] += v
	}
	for i, v := range o.coarse {
		h.coarse[i] += v
	}
	h.overflow += o.overflow
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the latency in nanoseconds at quantile q in [0, 1].
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for i, v := range h.fine {
		if seen+v > rank {
			return float64(i)*fineWidth + fineWidth/2
		}
		seen += v
	}
	for i, v := range h.coarse {
		if seen+v > rank {
			return fineLimit + float64(i)*coarseWidth + coarseWidth/2
		}
		seen += v
	}
	return float64(h.max)
}
