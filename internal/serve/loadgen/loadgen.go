// Package loadgen is the closed-loop load generator for the serve API.
// Each worker owns one session and drives it as fast as the server
// answers: step, observe the arm, post a deterministic reward, repeat.
// Per-request latencies land in fixed-width histograms (one per worker,
// merged at the end, so the measurement path takes no locks), from which
// the result reports p50/p99/p999 and throughput.
//
// The generator speaks to any http.Handler. Handing it an in-process
// *serve.Server measures the decision engine itself — no sockets, no
// kernel — which is the configuration the repo's reference numbers in
// BENCH_serve.json use; handing it an http.Client-backed proxy handler
// measures a live server instead.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"microbandit/internal/serve"
)

// Options configures a load run.
type Options struct {
	// Handler is the server under test, driven in-process.
	Handler http.Handler
	// Workers is the number of closed-loop workers, each with its own
	// session. Defaults to 8.
	Workers int
	// Duration bounds the measured phase. Defaults to 1s.
	Duration time.Duration
	// Spec is the session spec every worker creates (seeds are
	// diversified per worker). A zero Arms selects 8 DUCB arms.
	Spec serve.Spec
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Spec.Arms == 0 {
		o.Spec = serve.Spec{Algo: "ducb", Arms: 8}
	}
}

// Result is one load run's measurement, in the shape written to
// BENCH_serve.json.
type Result struct {
	Workers   int     `json:"workers"`
	Arms      int     `json:"arms"`
	Algo      string  `json:"algo"`
	Seconds   float64 `json:"seconds"`
	Decisions int64   `json:"decisions"`
	Requests  int64   `json:"requests"`
	// DecisionsPerSec is the headline throughput: completed
	// step+reward pairs per second across all workers.
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	// Per-request latency percentiles, microseconds.
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
	// Errors counts non-2xx responses (0 on a healthy run).
	Errors int64 `json:"errors"`
}

// Run drives the handler until the duration elapses or ctx is canceled,
// whichever is first, and returns the merged measurement. Session
// creation happens before the clock starts; an interrupt mid-run still
// returns the partial measurement.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts.normalize()
	if opts.Handler == nil {
		return nil, errors.New("loadgen: Options.Handler is nil")
	}
	if err := opts.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("loadgen: spec: %w", err)
	}

	workers := make([]*worker, opts.Workers)
	for i := range workers {
		w, err := newWorker(opts.Handler, opts.Spec, i)
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(runCtx)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{
		Workers: opts.Workers,
		Arms:    opts.Spec.Arms,
		Algo:    opts.Spec.Algo,
		Seconds: elapsed,
	}
	var hist histogram
	for _, w := range workers {
		res.Decisions += w.decisions
		res.Requests += w.requests
		res.Errors += w.errors
		hist.merge(&w.hist)
	}
	if elapsed > 0 {
		res.DecisionsPerSec = float64(res.Decisions) / elapsed
		res.RequestsPerSec = float64(res.Requests) / elapsed
	}
	res.P50Us = hist.quantile(0.50) / 1000
	res.P99Us = hist.quantile(0.99) / 1000
	res.P999Us = hist.quantile(0.999) / 1000
	res.MaxUs = float64(hist.max) / 1000
	return res, nil
}

// worker is one closed-loop client: a session id, its private histogram,
// and its counters. Nothing here is shared while the run is hot.
//
// The hot loop avoids the httptest helpers: the two requests (step,
// reward) are built once and reused — URL parsed once, bodies swapped in
// place — and responses land in a reusable writer. On one core this
// roughly halves the cost of a decision versus stamping out fresh
// request/recorder pairs, which matters because every µs the generator
// burns is a µs the server under test cannot.
type worker struct {
	h    http.Handler
	base string

	stepReq   *http.Request
	rewardReq *http.Request
	body      memBody
	rewardBuf []byte
	resp      respWriter

	decisions int64
	requests  int64
	errors    int64
	hist      histogram
}

// memBody is a reusable request body (an io.ReadCloser over a byte
// slice).
type memBody struct {
	data []byte
	off  int
}

func (b *memBody) reset(data []byte) { b.data, b.off = data, 0 }

// Read implements io.Reader.
func (b *memBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// Close implements io.Closer.
func (b *memBody) Close() error { return nil }

// respWriter is a minimal reusable http.ResponseWriter.
type respWriter struct {
	hdr  http.Header
	code int
	buf  []byte
}

// Header implements http.ResponseWriter.
func (w *respWriter) Header() http.Header { return w.hdr }

// WriteHeader implements http.ResponseWriter.
func (w *respWriter) WriteHeader(code int) { w.code = code }

// Write implements http.ResponseWriter.
func (w *respWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *respWriter) reset() {
	w.code = http.StatusOK
	w.buf = w.buf[:0]
	clear(w.hdr)
}

// newWorker creates the worker's session (outside the measured phase).
func newWorker(h http.Handler, spec serve.Spec, idx int) (*worker, error) {
	spec.Seed = spec.Seed*1000 + uint64(idx) + 1
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(string(body)))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code != http.StatusCreated {
		return nil, fmt.Errorf("loadgen: create session: status %d: %s", rw.Code, rw.Body.String())
	}
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &cr); err != nil {
		return nil, fmt.Errorf("loadgen: create session: %w", err)
	}
	w := &worker{h: h, base: "/v1/sessions/" + cr.ID}
	w.stepReq = httptest.NewRequest("POST", w.base+"/step", nil)
	w.stepReq.Body = http.NoBody
	w.rewardReq = httptest.NewRequest("POST", w.base+"/reward", nil)
	w.rewardReq.Body = &w.body
	w.resp.hdr = make(http.Header, 2)
	return w, nil
}

// run is the closed loop. It checks ctx between decisions, not between
// the step and its reward, so a canceled run never leaves the session
// with an open decision.
func (w *worker) run(ctx context.Context) {
	var stepResp struct {
		Seq uint64 `json:"seq"`
		Arm int    `json:"arm"`
	}
	for ctx.Err() == nil {
		body, code := w.do(w.stepReq)
		if code != http.StatusOK {
			w.errors++
			continue
		}
		if err := json.Unmarshal(body, &stepResp); err != nil {
			w.errors++
			continue
		}
		reward := syntheticReward(stepResp.Arm, stepResp.Seq)
		b := w.rewardBuf[:0]
		b = append(b, `{"seq":`...)
		b = strconv.AppendUint(b, stepResp.Seq, 10)
		b = append(b, `,"reward":`...)
		b = strconv.AppendFloat(b, reward, 'g', -1, 64)
		b = append(b, '}')
		w.rewardBuf = b
		w.body.reset(b)
		if _, code := w.do(w.rewardReq); code != http.StatusOK {
			w.errors++
			continue
		}
		w.decisions++
	}
}

// do issues one in-process request, timing the full handler invocation.
func (w *worker) do(req *http.Request) ([]byte, int) {
	w.resp.reset()
	t0 := time.Now()
	w.h.ServeHTTP(&w.resp, req)
	w.hist.record(time.Since(t0).Nanoseconds())
	w.requests++
	return w.resp.buf, w.resp.code
}

// syntheticReward gives arms distinct stationary means with a
// deterministic per-step wobble, so the agents under load learn a real
// preference instead of noise.
func syntheticReward(arm int, seq uint64) float64 {
	base := 0.3 + 0.4*float64(arm%4)/4
	return base + 0.1*math.Sin(float64(seq)*0.05)
}

// ---------------------------------------------------------------------
// Latency histogram

// Fixed-width two-tier buckets: 100 ns resolution below 1 ms, 10 µs
// resolution up to 100 ms, one overflow bucket above. Recording is two
// integer ops; quantiles interpolate within a bucket.
const (
	fineWidth     = 100       // ns per bucket below fineLimit
	fineLimit     = 1_000_000 // 1 ms
	fineBuckets   = fineLimit / fineWidth
	coarseWidth   = 10_000      // ns per bucket up to coarseLimit
	coarseLimit   = 100_000_000 // 100 ms
	coarseBuckets = (coarseLimit - fineLimit) / coarseWidth
)

type histogram struct {
	fine     [fineBuckets]int64
	coarse   [coarseBuckets]int64
	overflow int64
	count    int64
	max      int64
}

func (h *histogram) record(ns int64) {
	h.count++
	if ns > h.max {
		h.max = ns
	}
	switch {
	case ns < 0:
		h.fine[0]++
	case ns < fineLimit:
		h.fine[ns/fineWidth]++
	case ns < coarseLimit:
		h.coarse[(ns-fineLimit)/coarseWidth]++
	default:
		h.overflow++
	}
}

func (h *histogram) merge(o *histogram) {
	for i, v := range o.fine {
		h.fine[i] += v
	}
	for i, v := range o.coarse {
		h.coarse[i] += v
	}
	h.overflow += o.overflow
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// quantile returns the latency in nanoseconds at quantile q in [0, 1].
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count-1))
	var seen int64
	for i, v := range h.fine {
		if seen+v > rank {
			return float64(i)*fineWidth + fineWidth/2
		}
		seen += v
	}
	for i, v := range h.coarse {
		if seen+v > rank {
			return fineLimit + float64(i)*coarseWidth + coarseWidth/2
		}
		seen += v
	}
	return float64(h.max)
}
