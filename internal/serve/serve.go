// Package serve is the bandit-as-a-service layer: it exposes the core
// agents (internal/core) over a stdlib net/http JSON API so any process —
// a simulator, a tuning harness, a fleet of microservices — can drive
// session-based choose/reward decision loops without linking this
// repository.
//
// Architecture, bottom up:
//
//   - Session (session.go): one agent plus the sequencing state that
//     makes the step/reward protocol safe over a retrying transport.
//     Per-session sequence numbers reject duplicate and out-of-order
//     reward posts deterministically.
//   - Store (store.go): a power-of-two-sharded session table with
//     per-shard locks, so map access never serializes the request path.
//   - Checkpoint (checkpoint.go): versioned JSON persistence of every
//     session, built on core's Snapshot/Restore codec. A restored server
//     continues every fault-free session's exact arm sequence.
//   - Server (this file): the HTTP surface, with nil-guarded
//     internal/obs telemetry in the request path and server-side
//     internal/fault chaos specs per session.
//   - Batch plane (batch.go, batchcodec.go): POST /v1/batch executes
//     many step/reward ops per request. Sessions whose agents qualify
//     live in struct-of-arrays slabs (core.Slab); the batch handler
//     groups ops by slab and runs them through the StepBatch and
//     RewardBatch column kernels with a zero-allocation request codec,
//     preserving per-session protocol semantics exactly.
//
// The load generator lives in the loadgen subpackage; the CLI wrapping
// both is cmd/mab-serve.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"microbandit/internal/obs"
)

// maxBodyBytes bounds request bodies; every valid request fits well
// within it.
const maxBodyBytes = 1 << 20

// Lifecycle states gating readiness. Liveness (GET /healthz) answers 200
// in every state — the process is up; readiness (GET /readyz) answers 200
// only in StateReady, so a cluster router stops placing traffic on a node
// before the node stops accepting it.
const (
	// StateReady serves everything.
	StateReady int32 = iota
	// StateNotReady fails readiness but still accepts operations: the
	// first stage of a drain (or a node mid-restore), giving routers a
	// probe interval to steer traffic away before operations start
	// bouncing.
	StateNotReady
	// StateDraining fails readiness and answers mutating operations with
	// 503 plus a Retry-After header, telling well-behaved clients to back
	// off and retry elsewhere.
	StateDraining
)

// Config configures a Server.
type Config struct {
	// Store backs the server; nil builds a fresh NewStore(0).
	Store *Store
	// Obs, when non-nil, receives the telemetry stream of every
	// session's agent (arm choices, rewards, snapshots) plus a
	// KindRunStart event per created session. The recorder is wrapped
	// with a mutex before it is shared; nil keeps the request path
	// entirely telemetry-free (one nil check per session create).
	Obs obs.Recorder
	// ObsEvery is the agent snapshot cadence in completed decisions
	// (0 disables snapshots).
	ObsEvery int
	// Version is reported by GET /healthz.
	Version string
	// CheckpointPath, when non-empty, enables POST /v1/checkpoint.
	CheckpointPath string
	// RetryAfter is the backoff hint a draining server attaches to its
	// 503 responses (rounded up to whole seconds; zero selects 1s).
	RetryAfter time.Duration
}

// Server is the bandit-as-a-service HTTP surface. Construct with New;
// it is safe for concurrent use by any number of connections.
type Server struct {
	store      *Store
	rec        obs.Recorder // mutex-wrapped; nil when telemetry is off
	obsEvery   int
	version    string
	ckptPath   string
	state      atomic.Int32 // StateReady / StateNotReady / StateDraining
	retryAfter string       // Retry-After header value, whole seconds
	mux        *http.ServeMux
}

// New builds a server over cfg.
func New(cfg Config) *Server {
	st := cfg.Store
	if st == nil {
		st = NewStore(0)
	}
	ra := cfg.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	s := &Server{
		store:      st,
		obsEvery:   cfg.ObsEvery,
		version:    cfg.Version,
		ckptPath:   cfg.CheckpointPath,
		retryAfter: strconv.Itoa(int((ra + time.Second - 1) / time.Second)),
	}
	if cfg.Obs != nil {
		s.rec = &lockedRecorder{inner: cfg.Obs}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("PUT /v1/sessions/{id}", s.handleCreateAt)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.handleStep)
	mux.HandleFunc("POST /v1/sessions/{id}/reward", s.handleReward)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	s.mux = mux
	return s
}

// Store returns the backing session store.
func (s *Server) Store() *Store { return s.store }

// State returns the server's lifecycle state.
func (s *Server) State() int32 { return s.state.Load() }

// SetState moves the server between lifecycle states. A drain is the
// two-beat sequence StateNotReady (readiness fails, traffic still
// served) then StateDraining (operations bounce with Retry-After); a
// node restoring sessions sits in StateNotReady until the restore
// completes.
func (s *Server) SetState(st int32) { s.state.Store(st) }

// ServeHTTP implements http.Handler with panic recovery: a panicking
// handler (an injected chaos fault, or a bug) answers 500 with a typed
// error instead of tearing down the connection. Session state stays
// consistent because mutations happen under the session lock before any
// panic-prone call returns to the handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal,
				fmt.Sprintf("handler panic: %v", v))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// lockedRecorder makes a single Recorder safe for the server's
// concurrent sessions. Sessions already serialize their own emissions
// under the session lock; this lock orders events across sessions.
type lockedRecorder struct {
	mu    sync.Mutex
	inner obs.Recorder
}

// Record implements obs.Recorder.
func (l *lockedRecorder) Record(ev obs.Event) {
	l.mu.Lock()
	l.inner.Record(ev)
	l.mu.Unlock()
}

// ---------------------------------------------------------------------
// Wire types

// stepRequest is the optional /v1/step body: absent (or empty) for a
// plain step, or a context vector [phase, mpki, bw_util] selecting the
// signature context a contextual session decides in.
type stepRequest struct {
	Context []float64 `json:"context"`
}

type stepResponse struct {
	Seq uint64 `json:"seq"`
	Arm int    `json:"arm"`
}

type rewardRequest struct {
	Seq    uint64  `json:"seq"`
	Reward float64 `json:"reward"`
}

type rewardResponse struct {
	Steps uint64 `json:"steps"`
}

type createResponse struct {
	ID   string `json:"id"`
	Arms int    `json:"arms"`
}

type readyzResponse struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
}

type healthzResponse struct {
	Status   string `json:"status"`
	Version  string `json:"version,omitempty"`
	Sessions int    `json:"sessions"`
	Shards   int    `json:"shards"`
}

type listResponse struct {
	Sessions []string `json:"sessions"`
}

type checkpointResponse struct {
	Path     string `json:"path"`
	Sessions int    `json:"sessions"`
}

type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ---------------------------------------------------------------------
// Handlers

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:   "ok",
		Version:  s.version,
		Sessions: s.store.Len(),
		Shards:   s.store.Shards(),
	})
}

// handleReadyz is the readiness probe: 200 only while the node should
// receive new traffic. A draining or restoring node fails readiness
// (with the same Retry-After hint its bounced operations carry) before
// it stops accepting operations, so a router that honors the probe
// never routes to a node mid-restore.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if st := s.state.Load(); st != StateReady {
		w.Header().Set("Retry-After", s.retryAfter)
		status := "not_ready"
		if st == StateDraining {
			status = "draining"
		}
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: status, Sessions: s.store.Len()})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready", Sessions: s.store.Len()})
}

// gate bounces mutating operations while the server drains: 503 with a
// Retry-After header, which retrying clients (the loadgen, the cluster
// router) treat as "back off, then try again" rather than an error.
func (s *Server) gate(w http.ResponseWriter) bool {
	if s.state.Load() != StateDraining {
		return true
	}
	w.Header().Set("Retry-After", s.retryAfter)
	writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
	return false
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var spec Spec
	if !decodeBody(w, r, &spec) {
		return
	}
	sess, err := s.store.Create(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	s.attachObs(sess)
	writeJSON(w, http.StatusCreated, createResponse{ID: sess.ID(), Arms: sess.Spec().Arms})
}

// handleCreateAt creates a session under a caller-chosen id — the
// cluster router names sessions itself so their ring placement is
// deterministic before any node is involved. The handler is idempotent
// for retries: re-PUTting an identical spec answers 200 with the
// existing session, while a conflicting spec under a taken id is a 409.
func (s *Server) handleCreateAt(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var spec Spec
	if !decodeBody(w, r, &spec) {
		return
	}
	sess, created, err := s.store.CreateWithID(r.PathValue("id"), spec)
	if err != nil {
		var pe *ProtocolError
		if errors.As(err, &pe) && pe.Code == CodeConflict {
			writeError(w, http.StatusConflict, pe.Code, pe.Msg)
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
		s.attachObs(sess)
	}
	writeJSON(w, status, createResponse{ID: sess.ID(), Arms: sess.Spec().Arms})
}

// attachObs wires a freshly created session into the telemetry stream.
func (s *Server) attachObs(sess *Session) {
	if s.rec == nil {
		return
	}
	s.rec.Record(obs.Event{Kind: obs.KindRunStart, Label: sess.ID()})
	obs.Attach(sess.agent, s.rec, s.obsEvery)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	ids := s.store.IDs()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, listResponse{Sessions: ids})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	info, err := sess.Info()
	if err != nil {
		writeProtocolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.store.Delete(id) {
		writeError(w, http.StatusNotFound, CodeNotFound, "no session "+id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	// The body is optional: an empty body (the historical wire form) is a
	// plain step; a JSON object may carry a context vector.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "body: "+err.Error())
		return
	}
	var ctxVec []float64
	if len(bytes.TrimSpace(body)) > 0 {
		var req stepRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "body: "+err.Error())
			return
		}
		if dec.More() {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "body: trailing data after JSON value")
			return
		}
		ctxVec = req.Context
	}
	seq, arm, err := sess.StepWithContext(ctxVec)
	if err != nil {
		writeProtocolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stepResponse{Seq: seq, Arm: arm})
}

func (s *Server) handleReward(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req rewardRequest
	if !decodeBody(w, r, &req) {
		return
	}
	steps, err := sess.Reward(req.Seq, req.Reward)
	if err != nil {
		writeProtocolError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rewardResponse{Steps: steps})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.ckptPath == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "server runs without a checkpoint path")
		return
	}
	n := s.store.Len()
	if err := s.store.WriteCheckpoint(s.ckptPath); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{Path: s.ckptPath, Sessions: n})
}

// ---------------------------------------------------------------------
// Helpers

// session resolves the request's {id} path value, answering 404 itself
// when the session does not exist.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no session "+id)
		return nil, false
	}
	return sess, true
}

// decodeBody decodes a bounded JSON request body into v, answering 400
// itself on malformed input. Trailing garbage after the JSON value is
// rejected — it indicates a framing bug on the client side.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "body: trailing data after JSON value")
		return false
	}
	return true
}

// writeProtocolError maps session protocol violations to 409 — except
// the deleted-session race, which is a 404 like any other missing
// session, and malformed-request rejections (bad context vectors,
// contexts on non-contextual sessions), which are 400s — and anything
// else to 500.
func writeProtocolError(w http.ResponseWriter, err error) {
	var pe *ProtocolError
	if errors.As(err, &pe) {
		status := http.StatusConflict
		switch pe.Code {
		case CodeNotFound:
			status = http.StatusNotFound
		case CodeBadRequest:
			status = http.StatusBadRequest
		}
		writeError(w, status, pe.Code, pe.Msg)
		return
	}
	writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the fixed wire types; keep the connection sane.
		io.WriteString(w, `{"error":{"code":"internal","message":"encode failure"}}`)
		return
	}
	data = append(data, '\n')
	w.Write(data)
}
