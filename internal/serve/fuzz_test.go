package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzSpecDecode throws arbitrary bytes at the session-create endpoint:
// the handler must answer (2xx or a clean 4xx JSON envelope) without
// panicking, and any accepted spec must actually serve a decision.
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{"algo":"ducb","arms":4,"seed":9}`))
	f.Add([]byte(`{"arms":3,"meta_pairs":[[0.5,0.99],[1,0.999]]}`))
	f.Add([]byte(`{"arms":2,"faults":"noise:0.5,delay:1"}`))
	f.Add([]byte(`{"arms":-1}`))
	f.Add([]byte(`{"arms":1e9}`))
	f.Add([]byte(`{"algo":"static:1","arms":2}`))
	f.Add([]byte(`{"arms":2} {"arms":3}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("\x00\xff{"))

	f.Fuzz(func(t *testing.T, body []byte) {
		srv := New(Config{})
		req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req) // must not panic (ServeHTTP recovers, but recorder surfaces 500)
		switch w.Code {
		case http.StatusCreated:
			var cr createResponse
			if err := json.Unmarshal(w.Body.Bytes(), &cr); err != nil {
				t.Fatalf("created but body %q: %v", w.Body.String(), err)
			}
			sess, ok := srv.Store().Get(cr.ID)
			if !ok {
				t.Fatalf("created id %q not in store", cr.ID)
			}
			seq, arm, err := sess.Step()
			if err != nil {
				t.Fatalf("accepted spec cannot step: %v", err)
			}
			if arm < 0 || arm >= sess.Spec().Arms {
				t.Fatalf("arm %d outside [0,%d)", arm, sess.Spec().Arms)
			}
			if _, err := sess.Reward(seq, 0.5); err != nil {
				t.Fatalf("accepted spec cannot reward: %v", err)
			}
		case http.StatusBadRequest:
			var eb errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code != CodeBadRequest {
				t.Fatalf("bad request with body %q (%v)", w.Body.String(), err)
			}
		default:
			t.Fatalf("unexpected status %d for %q", w.Code, body)
		}
	})
}

// FuzzRestoreCheckpoint throws arbitrary bytes at the checkpoint decoder:
// it must return a typed *CheckpointError or a store whose sessions all
// serve — never panic.
func FuzzRestoreCheckpoint(f *testing.F) {
	// A genuine checkpoint as the richest seed.
	st := NewStore(2)
	for _, sp := range []Spec{
		{Algo: "ducb", Arms: 3, Seed: 1},
		{Algo: "static:0", Arms: 2},
		{Arms: 2, Seed: 3, MetaPairs: [][2]float64{{0.5, 0.99}, {1, 0.999}}},
	} {
		s, err := st.Create(sp)
		if err != nil {
			f.Fatal(err)
		}
		seq, _, _ := s.Step()
		s.Reward(seq, 0.7)
	}
	good, err := st.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"v":1,"next_id":0,"sessions":[]}`))
	f.Add([]byte(`{"v":2}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add(good[:len(good)/3])
	f.Add([]byte(`{"v":1,"next_id":1,"sessions":[{"id":"s-1","spec":{"arms":2},"kind":"agent","agent":{"v":1,"arms":2}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := RestoreCheckpoint(data, 2)
		if err != nil {
			var ce *CheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		// Whatever decoded must serve: every restored session can finish
		// its open decision (if any) and then run a full one.
		for _, id := range st.IDs() {
			s, ok := st.Get(id)
			if !ok {
				continue
			}
			info, err := s.Info()
			if err != nil {
				continue // raced a delete
			}
			if info.Open {
				if _, err := s.Reward(info.Seq, 0.5); err != nil {
					t.Fatalf("session %s cannot close its open decision: %v", id, err)
				}
			}
			seq, arm, err := s.Step()
			if err != nil {
				t.Fatalf("session %s cannot step: %v", id, err)
			}
			if arm < 0 || arm >= s.Spec().Arms {
				t.Fatalf("session %s arm %d outside [0,%d)", id, arm, s.Spec().Arms)
			}
			if _, err := s.Reward(seq, 0.5); err != nil {
				t.Fatalf("session %s cannot reward: %v", id, err)
			}
		}
	})
}

// FuzzBatchDecode cross-checks the hand-rolled /v1/batch parser against
// encoding/json: rejecting a body is always allowed (strictness is part
// of the contract), but every body parseBatch accepts must decode to
// exactly the operations encoding/json sees — same ids, kinds, seqs,
// and reward bits.
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte(`{"ops":[{"id":"s-00000001","step":true}]}`))
	f.Add([]byte(`{"ops":[{"id":"s-1","seq":3,"reward":0.5},{"id":"a","step":false,"seq":1,"reward":-1e-3}]}`))
	f.Add([]byte(`{"ops":[]}`))
	f.Add([]byte(`{ "ops" : [ { "reward" : 1.25e2 , "seq" : 10 , "id" : "x" } ] }`))
	f.Add([]byte(`{"ops":[{"id":"x","seq":18446744073709551615,"reward":0}]}`))
	f.Add([]byte(`{"ops":[{"id":"x","step":true},{"id":"x","seq":0,"reward":0.25}]}`))
	f.Add([]byte(`{"ops":[{"id":"x","seq":01,"reward":1}]}`))
	f.Add([]byte(`{"ops":[{"id":"A","step":true}]}`))
	f.Add([]byte(`{"ops":{}}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"ops":[{"id":"c1","step":true,"ctx":[3,1.5,0.25]}]}`))
	f.Add([]byte(`{"ops":[{"ctx":[0,0,0],"id":"c2","step":true}]}`))
	f.Add([]byte(`{"ops":[{"id":"c3","seq":1,"reward":0.5,"ctx":[1,2,3]}]}`))
	f.Add([]byte(`{"ops":[{"id":"c4","step":true,"ctx":[1,2]}]}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		ops, err := parseBatch(body, nil)
		if err != nil {
			return // must only not panic; strict rejections are fine
		}
		var ref struct {
			Ops []struct {
				ID     *string    `json:"id"`
				Step   *bool      `json:"step"`
				Seq    *uint64    `json:"seq"`
				Reward *float64   `json:"reward"`
				Ctx    *[]float64 `json:"ctx"`
			} `json:"ops"`
		}
		if err := json.Unmarshal(body, &ref); err != nil {
			t.Fatalf("parseBatch accepted %q but encoding/json rejects it: %v", body, err)
		}
		if len(ref.Ops) != len(ops) {
			t.Fatalf("parseBatch found %d ops, encoding/json %d in %q", len(ops), len(ref.Ops), body)
		}
		for i, op := range ops {
			ro := ref.Ops[i]
			id := string(body[op.idOff:op.idEnd])
			if ro.ID == nil || *ro.ID != id {
				t.Fatalf("op %d: id %q vs encoding/json %v", i, id, ro.ID)
			}
			isReward := ro.Seq != nil && ro.Reward != nil
			switch op.kind {
			case opReward:
				if !isReward {
					t.Fatalf("op %d: parsed as reward, encoding/json sees %+v", i, ro)
				}
				if *ro.Seq != op.seq || *ro.Reward != op.reward {
					t.Fatalf("op %d: (seq %d, reward %v) vs encoding/json (%d, %v)",
						i, op.seq, op.reward, *ro.Seq, *ro.Reward)
				}
			case opStep:
				if isReward || ro.Step == nil || !*ro.Step {
					t.Fatalf("op %d: parsed as step, encoding/json sees %+v", i, ro)
				}
				if op.hasCtx {
					if ro.Ctx == nil || len(*ro.Ctx) != 3 {
						t.Fatalf("op %d: parsed ctx, encoding/json sees %+v", i, ro)
					}
					for j := 0; j < 3; j++ {
						if (*ro.Ctx)[j] != op.ctx[j] {
							t.Fatalf("op %d ctx[%d]: %v vs encoding/json %v",
								i, j, op.ctx[j], (*ro.Ctx)[j])
						}
					}
				} else if ro.Ctx != nil {
					t.Fatalf("op %d: encoding/json sees ctx %v, parser saw none", i, *ro.Ctx)
				}
			default:
				t.Fatalf("op %d: bad kind %d", i, op.kind)
			}
		}
	})
}
