package serve

import (
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"microbandit/internal/scenario"
)

// Tests for Spec.Scenario: a session bound to a decision scenario
// inherits the scenario's arm count, rejects mismatches and unknown
// names, and the binding survives a checkpoint round-trip.

func TestSpecScenarioFillsArms(t *testing.T) {
	st := NewStore(1)
	s, err := st.Create(Spec{Algo: "ducb", Scenario: "dramsched"})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	sc, err := scenario.NewByName("dramsched")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Spec().Arms, len(sc.ArmLabels()); got != want {
		t.Fatalf("arms = %d, want the scenario's %d", got, want)
	}
	if s.Spec().Scenario != "dramsched" {
		t.Fatalf("spec lost its scenario: %+v", s.Spec())
	}
	// Matching explicit arms is fine.
	if _, err := st.Create(Spec{Algo: "ducb", Scenario: "cacheins", Arms: 4}); err != nil {
		t.Fatalf("Create with matching arms: %v", err)
	}
}

func TestSpecScenarioRejections(t *testing.T) {
	st := NewStore(1)
	if _, err := st.Create(Spec{Algo: "ducb", Scenario: "dramsched", Arms: 7}); err == nil {
		t.Error("Create accepted arms mismatching the scenario")
	}
	_, err := st.Create(Spec{Algo: "ducb", Scenario: "warpdrive"})
	if err == nil {
		t.Fatal("Create accepted an unknown scenario")
	}
	msg := err.Error()
	for _, n := range scenario.Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("error %q does not list valid scenario %q", msg, n)
		}
	}
}

func TestScenarioSessionOverHTTP(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ducb","scenario":"cacheins"}`, http.StatusCreated, &cr)
	if cr.Arms != 4 {
		t.Fatalf("created arms = %d, want cacheins's 4", cr.Arms)
	}
	base := "/v1/sessions/" + cr.ID
	var stp stepResponse
	do(t, srv, "POST", base+"/step", "", http.StatusOK, &stp)
	if stp.Arm < 0 || stp.Arm >= 4 {
		t.Fatalf("step arm = %d, want within the scenario's 4", stp.Arm)
	}
	var info SessionInfo
	do(t, srv, "GET", base, "", http.StatusOK, &info)
	if info.Spec.Scenario != "cacheins" {
		t.Fatalf("info spec = %+v, want the scenario binding", info.Spec)
	}

	if code := errCode(t, srv, "POST", "/v1/sessions",
		`{"algo":"ducb","scenario":"warpdrive"}`, http.StatusBadRequest); code != CodeBadRequest {
		t.Fatalf("unknown-scenario code = %q, want %s", code, CodeBadRequest)
	}
	if code := errCode(t, srv, "POST", "/v1/sessions",
		`{"algo":"ducb","scenario":"dramsched","arms":9}`, http.StatusBadRequest); code != CodeBadRequest {
		t.Fatalf("mismatched-arms code = %q, want %s", code, CodeBadRequest)
	}
}

func TestScenarioSpecCheckpointRoundTrip(t *testing.T) {
	st := NewStore(2)
	s, err := st.Create(Spec{Algo: "ducb", Scenario: "pfdegree"})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 3; i++ {
		seq, _, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Reward(seq, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := st.WriteCheckpoint(path); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	st2, err := LoadCheckpoint(path, 2)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	s2, ok := st2.Get(s.ID())
	if !ok {
		t.Fatalf("session %s missing after reload", s.ID())
	}
	sp := s2.Spec()
	if sp.Scenario != "pfdegree" || sp.Arms != 4 {
		t.Fatalf("reloaded spec = %+v, want scenario pfdegree with 4 arms", sp)
	}
}
