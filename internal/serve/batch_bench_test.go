package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// benchBatchRound drives the /v1/batch closed loop at the given batch
// size: one request per round carrying the previous rewards plus the
// next steps, exactly the shape the load generator sends.
func benchBatchRound(b *testing.B, batch int) {
	srv := New(Config{})
	ids := make([]string, batch)
	for i := range ids {
		body := fmt.Sprintf(`{"algo":"ducb","arms":8,"seed":%d}`, i+1)
		req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(body))
		rw := httptest.NewRecorder()
		srv.ServeHTTP(rw, req)
		if rw.Code != http.StatusCreated {
			b.Fatalf("create: %d %s", rw.Code, rw.Body.String())
		}
		var cr createResponse
		if err := json.Unmarshal(rw.Body.Bytes(), &cr); err != nil {
			b.Fatal(err)
		}
		ids[i] = cr.ID
	}

	seqs := make([]uint64, batch)
	arms := make([]int, batch)
	has := false
	var buf []byte
	var mem memBodyBench
	req := httptest.NewRequest("POST", "/v1/batch", nil)
	req.Body = &mem
	var rw respWriterBench
	rw.hdr = make(http.Header, 2)

	seqLit := []byte(`"seq":`)
	errLit := []byte(`"error"`)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		buf = append(buf[:0], `{"ops":[`...)
		k := 0
		if has {
			for j := range ids {
				if k > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, `{"id":"`...)
				buf = append(buf, ids[j]...)
				buf = append(buf, `","seq":`...)
				buf = strconv.AppendUint(buf, seqs[j], 10)
				buf = append(buf, `,"reward":0.5}`...)
				k++
			}
		}
		for j := range ids {
			if k > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"id":"`...)
			buf = append(buf, ids[j]...)
			buf = append(buf, `","step":true}`...)
			k++
		}
		buf = append(buf, `]}`...)
		mem.data, mem.off = buf, 0
		rw.code, rw.buf = http.StatusOK, rw.buf[:0]
		clear(rw.hdr)
		srv.ServeHTTP(&rw, req)
		if rw.code != http.StatusOK {
			b.Fatalf("batch: %d %s", rw.code, rw.buf)
		}
		// Pull the new seqs back out: "seq" appears exactly once per
		// step result, in session order.
		res := rw.buf
		if bytes.Contains(res, errLit) {
			b.Fatalf("batch round hit per-op errors: %s", res)
		}
		ri := 0
		for pos := 0; pos < len(res); pos++ {
			if pos == 0 || res[pos] != '"' || !bytes.HasPrefix(res[pos:], seqLit) {
				continue
			}
			pos += len(seqLit)
			var v uint64
			for pos < len(res) && res[pos] >= '0' && res[pos] <= '9' {
				v = v*10 + uint64(res[pos]-'0')
				pos++
			}
			if ri < batch {
				seqs[ri] = v
			}
			ri++
		}
		if ri != batch {
			b.Fatalf("saw %d step results, want %d", ri, batch)
		}
		_ = arms
		has = true
	}
	b.SetBytes(int64(batch))
}

func BenchmarkBatchRound16(b *testing.B)  { benchBatchRound(b, 16) }
func BenchmarkBatchRound64(b *testing.B)  { benchBatchRound(b, 64) }
func BenchmarkBatchRound256(b *testing.B) { benchBatchRound(b, 256) }

type memBodyBench struct {
	data []byte
	off  int
}

func (m *memBodyBench) Read(p []byte) (int, error) {
	if m.off >= len(m.data) {
		return 0, io.EOF
	}
	n := copy(p, m.data[m.off:])
	m.off += n
	return n, nil
}
func (m *memBodyBench) Close() error { return nil }

type respWriterBench struct {
	hdr  http.Header
	code int
	buf  []byte
}

func (w *respWriterBench) Header() http.Header { return w.hdr }
func (w *respWriterBench) WriteHeader(c int)   { w.code = c }
func (w *respWriterBench) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
