package serve

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

func TestNewStoreRoundsToPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards},
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		if got := NewStore(c.in).Shards(); got != c.want {
			t.Errorf("NewStore(%d).Shards() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStoreCreateGetDelete(t *testing.T) {
	st := NewStore(4)
	s, err := st.Create(Spec{Algo: "ucb", Arms: 3})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if got, ok := st.Get(s.ID()); !ok || got != s {
		t.Fatalf("Get(%q) = %v, %v", s.ID(), got, ok)
	}
	if _, ok := st.Get("s-missing"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if !st.Delete(s.ID()) {
		t.Fatal("Delete reported the session missing")
	}
	if st.Delete(s.ID()) {
		t.Fatal("second Delete reported success")
	}
	if st.Len() != 0 {
		t.Fatalf("Len after delete = %d, want 0", st.Len())
	}
}

func TestStoreCreateRejectsBadSpec(t *testing.T) {
	st := NewStore(1)
	bad := []Spec{
		{Arms: 0},
		{Arms: MaxArms + 1},
		{Arms: 2, Algo: "nope"},
		{Arms: 2, MetaPairs: [][2]float64{{1, 0.99}}},
		{Arms: 2, Faults: "stuckarm:0.5"}, // substrate kind
		{Arms: 2, Faults: "not a spec"},   // unparsable
		{Arms: 2, Algo: "static:7"},       // arm out of range
	}
	for _, sp := range bad {
		if _, err := st.Create(sp); err == nil {
			t.Errorf("Create(%+v) succeeded, want error", sp)
		}
	}
	if st.Len() != 0 {
		t.Fatalf("failed creates leaked sessions: Len = %d", st.Len())
	}
}

func TestStoreIDsSortedAndUnique(t *testing.T) {
	st := NewStore(8)
	want := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		s, err := st.Create(Spec{Algo: "eps", Arms: 2})
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		want = append(want, s.ID())
	}
	sort.Strings(want)
	got := st.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("IDs not sorted")
	}
}

// TestStoreConcurrent hammers the store from many goroutines; run with
// -race to verify the shard locking.
func TestStoreConcurrent(t *testing.T) {
	st := NewStore(8)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s, err := st.Create(Spec{Algo: "ducb", Arms: 4, Seed: uint64(w*100 + i + 1)})
				if err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				seq, _, err := s.Step()
				if err != nil {
					t.Errorf("Step: %v", err)
					return
				}
				if _, err := s.Reward(seq, 0.5); err != nil {
					t.Errorf("Reward: %v", err)
					return
				}
				if i%3 == 0 {
					st.Delete(s.ID())
				}
				st.Len()
				st.IDs()
			}
		}(w)
	}
	wg.Wait()
	ids := st.IDs()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	if len(ids) != st.Len() {
		t.Fatalf("IDs len %d != Len %d", len(ids), st.Len())
	}
}

func TestSessionSequenceProtocol(t *testing.T) {
	st := NewStore(1)
	s, err := st.Create(Spec{Algo: "ucb", Arms: 3, Seed: 7})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Reward before any step.
	if _, err := s.Reward(0, 1); !isProtocol(err, CodeNoOpenStep) {
		t.Fatalf("reward-before-step err = %v, want %s", err, CodeNoOpenStep)
	}

	seq, arm, err := s.Step()
	if err != nil || seq != 0 {
		t.Fatalf("first Step = (%d, %d, %v), want seq 0", seq, arm, err)
	}

	// Double step.
	if _, _, err := s.Step(); !isProtocol(err, CodeStepOpen) {
		t.Fatalf("double-step err = %v, want %s", err, CodeStepOpen)
	}

	// Wrong sequence number.
	if _, err := s.Reward(5, 1); !isProtocol(err, CodeSeqMismatch) {
		t.Fatalf("wrong-seq err = %v, want %s", err, CodeSeqMismatch)
	}

	steps, err := s.Reward(0, 1)
	if err != nil || steps != 1 {
		t.Fatalf("Reward = (%d, %v), want steps 1", steps, err)
	}

	// Duplicate reward delivery.
	if _, err := s.Reward(0, 1); !isProtocol(err, CodeNoOpenStep) {
		t.Fatalf("duplicate-reward err = %v, want %s", err, CodeNoOpenStep)
	}

	// Sequence advances.
	seq, _, err = s.Step()
	if err != nil || seq != 1 {
		t.Fatalf("second Step seq = %d (%v), want 1", seq, err)
	}
}

func isProtocol(err error, code string) bool {
	pe, ok := err.(*ProtocolError)
	return ok && pe.Code == code
}

func TestSessionInfo(t *testing.T) {
	st := NewStore(1)
	s, err := st.Create(Spec{Algo: "static:2", Arms: 4})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 3; i++ {
		seq, arm, err := s.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if arm != 2 {
			t.Fatalf("static:2 chose arm %d", arm)
		}
		if _, err := s.Reward(seq, 1); err != nil {
			t.Fatalf("Reward: %v", err)
		}
	}
	info, err := s.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.Seq != 3 || info.Open || info.BestArm != 2 {
		t.Fatalf("Info = %+v", info)
	}
	if info.ID != s.ID() {
		t.Fatalf("Info.ID = %q, want %q", info.ID, s.ID())
	}
}

func TestMetaSessionServes(t *testing.T) {
	st := NewStore(1)
	pairs := [][2]float64{{0.5, 0.99}, {1.0, 0.999}, {2.0, 1.0}}
	s, err := st.Create(Spec{Arms: 3, Seed: 11, MetaPairs: pairs})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 30; i++ {
		seq, arm, err := s.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if arm < 0 || arm >= 3 {
			t.Fatalf("arm %d out of range", arm)
		}
		if _, err := s.Reward(seq, float64(arm)/3); err != nil {
			t.Fatalf("Reward %d: %v", i, err)
		}
	}
	info, err := s.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if got := info.Seq; got != 30 {
		t.Fatalf("Seq = %d, want 30", got)
	}
}

func TestSessionIDsAreDense(t *testing.T) {
	st := NewStore(4)
	for i := 1; i <= 3; i++ {
		s, err := st.Create(Spec{Algo: "eps", Arms: 2})
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if want := fmt.Sprintf("s-%08x", i); s.ID() != want {
			t.Fatalf("id = %q, want %q", s.ID(), want)
		}
	}
}
