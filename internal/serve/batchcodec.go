package serve

import (
	"bytes"
	"fmt"
	"strconv"
)

// This file is the /v1/batch wire codec. The request grammar is a strict
// JSON subset:
//
//	{"ops":[
//	  {"id":"s-0000002a","step":true},
//	  {"id":"s-0000002a","seq":17,"reward":0.625},
//	  ...
//	]}
//
// and the response mirrors it:
//
//	{"results":[
//	  {"seq":17,"arm":3},
//	  {"steps":18},
//	  {"error":{"code":"seq_mismatch","message":"..."}},
//	  ...
//	]}
//
// The codec is hand-rolled rather than encoding/json because the batch
// endpoint exists to amortize per-decision overhead: a 256-op body
// decoded through reflection costs more than the 256 bandit updates it
// carries. Parsing works directly on the request body — session ids are
// recorded as byte offsets, numbers go through strconv on a stack-backed
// string — so a steady-state decode performs zero heap allocations
// (pinned by TestBatchDecodeAllocs). Strictness is part of the contract:
// escape sequences in ids, leading zeros, unknown keys, and trailing
// bytes are rejected, so every accepted body means exactly what
// encoding/json would have decoded (FuzzBatchDecode cross-checks).

// MaxBatchOps bounds the operations one /v1/batch request may carry.
const MaxBatchOps = 4096

// Batch operation kinds.
const (
	opStep uint8 = iota + 1
	opReward
)

// batchOp is one parsed operation. The session id is kept as offsets
// into the request body, not a string, so parsing allocates nothing.
// hasCtx marks a step op carrying a context vector; such ops run on the
// scalar path (contextual sessions are not slab-kernel material).
type batchOp struct {
	idOff, idEnd int32
	kind         uint8
	seq          uint64
	reward       float64
	hasCtx       bool
	ctx          [3]float64
}

// Batch result kinds.
const (
	resStep uint8 = iota + 1
	resReward
	resError
)

// batchResult is one operation's outcome, in wire order. n carries a
// step's seq or a reward's steps, depending on kind.
type batchResult struct {
	kind uint8
	arm  int32
	n    uint64
	code string
	msg  string
}

// batchParser is a cursor over one request body.
type batchParser struct {
	b   []byte
	pos int
}

func (p *batchParser) errf(format string, args ...any) error {
	return fmt.Errorf("offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *batchParser) ws() {
	for p.pos < len(p.b) {
		switch p.b[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *batchParser) eat(c byte) bool {
	if p.pos < len(p.b) && p.b[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// str consumes a JSON string and returns the offsets of its content.
// Escape sequences and non-ASCII bytes are rejected: session ids are
// printable ASCII ("s-%08x"), and refusing everything else keeps id
// bytes usable in place, byte-identical to what encoding/json would
// have decoded.
func (p *batchParser) str() (start, end int, err error) {
	if !p.eat('"') {
		return 0, 0, p.errf("expected string")
	}
	start = p.pos
	for p.pos < len(p.b) {
		c := p.b[p.pos]
		switch {
		case c == '"':
			end = p.pos
			p.pos++
			return start, end, nil
		case c == '\\':
			return 0, 0, p.errf("escape sequences are not supported in batch strings")
		case c < 0x20 || c >= 0x7f:
			return 0, 0, p.errf("batch strings must be printable ASCII")
		}
		p.pos++
	}
	return 0, 0, p.errf("unterminated string")
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// uintToken consumes a JSON unsigned integer (sequence numbers).
func (p *batchParser) uintToken() (uint64, error) {
	start := p.pos
	for p.pos < len(p.b) && isDigit(p.b[p.pos]) {
		p.pos++
	}
	tok := p.b[start:p.pos]
	if len(tok) == 0 {
		return 0, p.errf("expected unsigned integer")
	}
	if len(tok) > 1 && tok[0] == '0' {
		return 0, p.errf("malformed integer (leading zero)")
	}
	// string(tok) does not escape into ParseUint, so this conversion
	// stays on the stack.
	n, err := strconv.ParseUint(string(tok), 10, 64)
	if err != nil {
		return 0, p.errf("bad integer: %v", err)
	}
	return n, nil
}

// number consumes a JSON number. The grammar is checked by hand because
// strconv.ParseFloat is laxer than JSON (it takes "+1", ".5", "0x1p4",
// "Inf"); ParseFloat then supplies the value.
func (p *batchParser) number() (float64, error) {
	start := p.pos
	p.eat('-')
	intStart := p.pos
	for p.pos < len(p.b) && isDigit(p.b[p.pos]) {
		p.pos++
	}
	intLen := p.pos - intStart
	if intLen == 0 {
		return 0, p.errf("malformed number")
	}
	if intLen > 1 && p.b[intStart] == '0' {
		return 0, p.errf("malformed number (leading zero)")
	}
	if p.pos < len(p.b) && p.b[p.pos] == '.' {
		p.pos++
		fracStart := p.pos
		for p.pos < len(p.b) && isDigit(p.b[p.pos]) {
			p.pos++
		}
		if p.pos == fracStart {
			return 0, p.errf("malformed number (empty fraction)")
		}
	}
	if p.pos < len(p.b) && (p.b[p.pos] == 'e' || p.b[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.b) && (p.b[p.pos] == '+' || p.b[p.pos] == '-') {
			p.pos++
		}
		expStart := p.pos
		for p.pos < len(p.b) && isDigit(p.b[p.pos]) {
			p.pos++
		}
		if p.pos == expStart {
			return 0, p.errf("malformed number (empty exponent)")
		}
	}
	f, err := strconv.ParseFloat(string(p.b[start:p.pos]), 64)
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return f, nil
}

// boolean consumes a JSON true/false literal.
func (p *batchParser) boolean() (bool, error) {
	b := p.b[p.pos:]
	switch {
	case len(b) >= 4 && string(b[:4]) == "true":
		p.pos += 4
		return true, nil
	case len(b) >= 5 && string(b[:5]) == "false":
		p.pos += 5
		return false, nil
	}
	return false, p.errf("expected true or false")
}

// The two canonical op spellings the batch clients emit, recognized by
// opFast without the per-key dispatch loop.
var (
	opIDPrefix   = []byte(`{"id":`)
	opStepSuffix = []byte(`,"step":true}`)
	opSeqKey     = []byte(`,"seq":`)
	opRewardKey  = []byte(`,"reward":`)
)

// opFast decodes the two canonical op shapes — {"id":"…","step":true}
// and {"id":"…","seq":N,"reward":R}, compact, keys in this order — with
// a handful of prefix compares. Values go through the same str /
// uintToken / number routines as the general parser, so an op accepted
// here means exactly what the general parser would have decoded. Returns
// false with the cursor rewound for anything else; the general parser
// then accepts or rejects it.
func (p *batchParser) opFast(out *batchOp) bool {
	start := p.pos
	b := p.b
	if !bytes.HasPrefix(b[p.pos:], opIDPrefix) {
		return false
	}
	p.pos += len(opIDPrefix)
	vs, ve, err := p.str()
	if err != nil || vs == ve {
		p.pos = start
		return false
	}
	out.idOff, out.idEnd = int32(vs), int32(ve)
	if bytes.HasPrefix(b[p.pos:], opStepSuffix) {
		p.pos += len(opStepSuffix)
		out.kind = opStep
		return true
	}
	if !bytes.HasPrefix(b[p.pos:], opSeqKey) {
		p.pos = start
		return false
	}
	p.pos += len(opSeqKey)
	n, err := p.uintToken()
	if err != nil || !bytes.HasPrefix(b[p.pos:], opRewardKey) {
		p.pos = start
		return false
	}
	p.pos += len(opRewardKey)
	f, err := p.number()
	if err != nil || p.pos >= len(b) || b[p.pos] != '}' {
		p.pos = start
		return false
	}
	p.pos++
	out.seq, out.reward, out.kind = n, f, opReward
	return true
}

// op consumes one operation object into out. Keys may come in any order;
// duplicate keys follow JSON's last-one-wins.
func (p *batchParser) op(out *batchOp) error {
	if !p.eat('{') {
		return p.errf("expected op object")
	}
	var sawID, stepVal, sawSeq, sawReward bool
	p.ws()
	for {
		ks, ke, err := p.str()
		if err != nil {
			return err
		}
		p.ws()
		if !p.eat(':') {
			return p.errf("expected ':' after key")
		}
		p.ws()
		// Dispatch on key length + first byte: the four keys differ
		// there, so the hot loop never runs a full string compare.
		key := p.b[ks:ke]
		switch {
		case len(key) == 2 && key[0] == 'i' && key[1] == 'd':
			vs, ve, err := p.str()
			if err != nil {
				return err
			}
			if vs == ve {
				return p.errf("empty session id")
			}
			out.idOff, out.idEnd = int32(vs), int32(ve)
			sawID = true
		case len(key) == 4 && key[0] == 's' && string(key) == "step":
			v, err := p.boolean()
			if err != nil {
				return err
			}
			stepVal = v
		case len(key) == 3 && key[0] == 's' && key[1] == 'e' && key[2] == 'q':
			n, err := p.uintToken()
			if err != nil {
				return err
			}
			out.seq = n
			sawSeq = true
		case len(key) == 6 && key[0] == 'r' && string(key) == "reward":
			f, err := p.number()
			if err != nil {
				return err
			}
			out.reward = f
			sawReward = true
		case len(key) == 3 && key[0] == 'c' && key[1] == 't' && key[2] == 'x':
			if err := p.ctxVector(out); err != nil {
				return err
			}
		default:
			return p.errf("unknown op key %q", key)
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			break
		}
		return p.errf("expected ',' or '}' in op")
	}
	switch {
	case !sawID:
		return p.errf(`op is missing "id"`)
	case sawSeq != sawReward:
		return p.errf(`"seq" and "reward" must be given together`)
	case sawReward && stepVal:
		return p.errf("op cannot be both a step and a reward")
	case sawReward && out.hasCtx:
		return p.errf(`"ctx" applies only to step ops`)
	case sawReward:
		out.kind = opReward
	case stepVal:
		out.kind = opStep
	default:
		return p.errf(`op needs "step":true or "seq"+"reward"`)
	}
	return nil
}

// ctxVector consumes a context array of exactly 3 numbers
// ([phase, mpki, bw_util]) into out.
func (p *batchParser) ctxVector(out *batchOp) error {
	if !p.eat('[') {
		return p.errf(`"ctx" expects an array of 3 numbers`)
	}
	for i := 0; i < 3; i++ {
		p.ws()
		f, err := p.number()
		if err != nil {
			return err
		}
		out.ctx[i] = f
		p.ws()
		if i < 2 && !p.eat(',') {
			return p.errf(`"ctx" expects an array of 3 numbers`)
		}
	}
	if !p.eat(']') {
		return p.errf(`"ctx" expects an array of 3 numbers`)
	}
	out.hasCtx = true
	return nil
}

// parseBatch decodes a /v1/batch body into ops (appending; pass a
// recycled slice with len 0). Offsets in the returned ops index body.
func parseBatch(body []byte, ops []batchOp) ([]batchOp, error) {
	p := batchParser{b: body}
	p.ws()
	if !p.eat('{') {
		return ops, p.errf("expected '{'")
	}
	p.ws()
	ks, ke, err := p.str()
	if err != nil {
		return ops, err
	}
	if string(p.b[ks:ke]) != "ops" {
		return ops, p.errf(`expected "ops" key, got %q`, p.b[ks:ke])
	}
	p.ws()
	if !p.eat(':') {
		return ops, p.errf("expected ':'")
	}
	p.ws()
	if !p.eat('[') {
		return ops, p.errf("expected '['")
	}
	p.ws()
	if !p.eat(']') {
		for {
			if len(ops) >= MaxBatchOps {
				return ops, fmt.Errorf("more than %d ops in one batch", MaxBatchOps)
			}
			var op batchOp
			if !p.opFast(&op) {
				if err := p.op(&op); err != nil {
					return ops, err
				}
			}
			ops = append(ops, op)
			p.ws()
			if p.eat(',') {
				p.ws()
				continue
			}
			if p.eat(']') {
				break
			}
			return ops, p.errf("expected ',' or ']' after op")
		}
	}
	p.ws()
	if !p.eat('}') {
		return ops, p.errf("expected '}'")
	}
	p.ws()
	if p.pos != len(p.b) {
		return ops, p.errf("trailing data after batch")
	}
	return ops, nil
}

// BatchOp is one decoded /v1/batch operation in client-facing form. The
// cluster router parses mixed-owner batches into these, re-groups them
// by owning node, and re-encodes per-node sub-batches with AppendBatchOp.
type BatchOp struct {
	ID     string
	Step   bool
	Seq    uint64
	Reward float64
	// Ctx, when non-nil on a step op, is the context vector
	// [phase, mpki, bw_util] forwarded to a contextual session.
	Ctx []float64
}

// ParseBatchOps decodes a /v1/batch body. It accepts exactly the bodies
// the zero-allocation server codec accepts, so a batch the router splits
// is a batch every node would have taken whole.
func ParseBatchOps(body []byte) ([]BatchOp, error) {
	ops, err := parseBatch(body, nil)
	if err != nil {
		return nil, err
	}
	out := make([]BatchOp, len(ops))
	for i, op := range ops {
		out[i].ID = string(body[op.idOff:op.idEnd])
		if op.kind == opStep {
			out[i].Step = true
			if op.hasCtx {
				out[i].Ctx = []float64{op.ctx[0], op.ctx[1], op.ctx[2]}
			}
		} else {
			out[i].Seq, out[i].Reward = op.seq, op.reward
		}
	}
	return out, nil
}

// AppendBatchOp appends op in the canonical compact spelling — the one
// opFast decodes without entering the general parser. Context-carrying
// step ops append a ",\"ctx\":[...]" member, which only the general
// parser reads; that is fine, because contextual ops run on the scalar
// path anyway.
func AppendBatchOp(dst []byte, op BatchOp) []byte {
	dst = append(dst, `{"id":"`...)
	dst = append(dst, op.ID...)
	if op.Step {
		if op.Ctx == nil {
			return append(dst, `","step":true}`...)
		}
		dst = append(dst, `","step":true,"ctx":[`...)
		for i, f := range op.Ctx {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
		}
		return append(dst, ']', '}')
	}
	dst = append(dst, `","seq":`...)
	dst = strconv.AppendUint(dst, op.Seq, 10)
	dst = append(dst, `,"reward":`...)
	dst = strconv.AppendFloat(dst, op.Reward, 'g', -1, 64)
	return append(dst, '}')
}

// appendJSONString appends s as a JSON string literal. Error messages
// can embed client-supplied bytes, so quoting is not optional.
func appendJSONString(dst []byte, s string) []byte {
	const hex = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c >= 0x20:
			dst = append(dst, c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(dst, '"')
}

// appendBatchResults encodes the response body into dst (appending).
func appendBatchResults(dst []byte, results []batchResult) []byte {
	dst = append(dst, `{"results":[`...)
	for i := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		r := &results[i]
		switch r.kind {
		case resStep:
			dst = append(dst, `{"seq":`...)
			dst = strconv.AppendUint(dst, r.n, 10)
			dst = append(dst, `,"arm":`...)
			dst = strconv.AppendInt(dst, int64(r.arm), 10)
			dst = append(dst, '}')
		case resReward:
			dst = append(dst, `{"steps":`...)
			dst = strconv.AppendUint(dst, r.n, 10)
			dst = append(dst, '}')
		default:
			dst = append(dst, `{"error":{"code":"`...)
			dst = append(dst, r.code...) // codes are fixed tokens, never escaped
			dst = append(dst, `","message":`...)
			dst = appendJSONString(dst, r.msg)
			dst = append(dst, `}}`...)
		}
	}
	return append(dst, ']', '}', '\n')
}
