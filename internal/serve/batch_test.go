package serve

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// wireResult decodes one /v1/batch per-op result for assertions.
type wireResult struct {
	Seq   *uint64 `json:"seq"`
	Arm   *int    `json:"arm"`
	Steps *uint64 `json:"steps"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

type wireBatch struct {
	Results []wireResult `json:"results"`
}

func postBatch(t *testing.T, h http.Handler, body string) wireBatch {
	t.Helper()
	var out wireBatch
	do(t, h, "POST", "/v1/batch", body, http.StatusOK, &out)
	return out
}

// TestBatchMatchesScalar drives the same session population once over
// the scalar endpoints and once over /v1/batch, and requires identical
// arm streams: batching is a transport optimization, not a semantic one.
func TestBatchMatchesScalar(t *testing.T) {
	specs := []string{
		`{"arms":6,"algo":"ducb","seed":7}`,
		`{"arms":6,"algo":"eps","seed":8}`,
		`{"arms":6,"algo":"ucb","seed":9}`,
		`{"arms":6,"algo":"ducb","seed":10}`,
		`{"arms":3,"seed":11,"meta_pairs":[[0.5,0.99],[1.0,0.999]]}`, // scalar path inside the batch
	}
	const rounds = 120

	runScalar := func() [][]int {
		srv := New(Config{})
		arms := make([][]int, len(specs))
		for si, spec := range specs {
			var cr createResponse
			do(t, srv, "POST", "/v1/sessions", spec, http.StatusCreated, &cr)
			for r := 0; r < rounds; r++ {
				var sr stepResponse
				do(t, srv, "POST", "/v1/sessions/"+cr.ID+"/step", "", http.StatusOK, &sr)
				arms[si] = append(arms[si], sr.Arm)
				reward := 0.1 + 0.8*float64(sr.Arm%3)/3
				body := fmt.Sprintf(`{"seq":%d,"reward":%g}`, sr.Seq, reward)
				do(t, srv, "POST", "/v1/sessions/"+cr.ID+"/reward", body, http.StatusOK, nil)
			}
		}
		return arms
	}

	runBatched := func() [][]int {
		srv := New(Config{})
		ids := make([]string, len(specs))
		for si, spec := range specs {
			var cr createResponse
			do(t, srv, "POST", "/v1/sessions", spec, http.StatusCreated, &cr)
			ids[si] = cr.ID
		}
		arms := make([][]int, len(specs))
		seqs := make([]uint64, len(specs))
		for r := 0; r < rounds; r++ {
			var b strings.Builder
			b.WriteString(`{"ops":[`)
			for si, id := range ids {
				if si > 0 {
					b.WriteString(",")
				}
				if r > 0 {
					prevArm := arms[si][r-1]
					reward := 0.1 + 0.8*float64(prevArm%3)/3
					fmt.Fprintf(&b, `{"id":%q,"seq":%d,"reward":%g},`, id, seqs[si], reward)
				}
				fmt.Fprintf(&b, `{"id":%q,"step":true}`, id)
			}
			b.WriteString(`]}`)
			out := postBatch(t, srv, b.String())
			ri := 0
			for si := range ids {
				if r > 0 {
					rw := out.Results[ri]
					ri++
					if rw.Steps == nil {
						t.Fatalf("round %d session %d: reward result = %+v", r, si, rw)
					}
				}
				st := out.Results[ri]
				ri++
				if st.Seq == nil || st.Arm == nil {
					t.Fatalf("round %d session %d: step result = %+v", r, si, st)
				}
				seqs[si] = *st.Seq
				arms[si] = append(arms[si], *st.Arm)
			}
		}
		// Close the last open decisions so both populations end even.
		return arms
	}

	want := runScalar()
	got := runBatched()
	for si := range specs {
		for r := 0; r < rounds; r++ {
			if got[si][r] != want[si][r] {
				t.Fatalf("session %d round %d: batch arm %d, scalar arm %d", si, r, got[si][r], want[si][r])
			}
		}
	}
}

// TestBatchPerOpErrors checks that one batch can mix successes and typed
// failures, answered per-op under HTTP 200.
func TestBatchPerOpErrors(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"arms":4,"algo":"ducb","seed":3}`, http.StatusCreated, &cr)

	// Reward with nothing open; unknown id; valid step.
	out := postBatch(t, srv, fmt.Sprintf(
		`{"ops":[{"id":%q,"seq":0,"reward":0.5},{"id":"s-nope","step":true},{"id":%q,"step":true}]}`,
		cr.ID, cr.ID))
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	if out.Results[0].Error == nil || out.Results[0].Error.Code != CodeNoOpenStep {
		t.Fatalf("reward-without-step result = %+v, want %s", out.Results[0], CodeNoOpenStep)
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != CodeNotFound {
		t.Fatalf("unknown-id result = %+v, want %s", out.Results[1], CodeNotFound)
	}
	if out.Results[2].Seq == nil || out.Results[2].Arm == nil {
		t.Fatalf("step result = %+v, want success", out.Results[2])
	}

	// A second step while open (same batch: demoted to the scalar path),
	// then a reward quoting the wrong seq.
	out = postBatch(t, srv, fmt.Sprintf(
		`{"ops":[{"id":%q,"step":true},{"id":%q,"seq":41,"reward":0.5}]}`, cr.ID, cr.ID))
	if out.Results[0].Error == nil || out.Results[0].Error.Code != CodeStepOpen {
		t.Fatalf("double-step result = %+v, want %s", out.Results[0], CodeStepOpen)
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != CodeSeqMismatch {
		t.Fatalf("stale-reward result = %+v, want %s", out.Results[1], CodeSeqMismatch)
	}

	// The open decision is still rewardable the ordinary way.
	out = postBatch(t, srv, fmt.Sprintf(`{"ops":[{"id":%q,"seq":0,"reward":1}]}`, cr.ID))
	if out.Results[0].Steps == nil || *out.Results[0].Steps != 1 {
		t.Fatalf("closing reward result = %+v", out.Results[0])
	}
}

// TestBatchRewardBeforeStepOrder checks the documented in-batch
// ordering: a session's reward applies before its step, so the
// closed-loop pattern works in one request; a step posted before its
// reward in body order is demoted and fails like the scalar sequence
// would.
func TestBatchRewardBeforeStepOrder(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"arms":4,"algo":"ducb","seed":5}`, http.StatusCreated, &cr)

	out := postBatch(t, srv, fmt.Sprintf(`{"ops":[{"id":%q,"step":true}]}`, cr.ID))
	seq := *out.Results[0].Seq

	// step before reward in body order: the step must see the still-open
	// decision and fail, the reward then closes it.
	out = postBatch(t, srv, fmt.Sprintf(
		`{"ops":[{"id":%q,"step":true},{"id":%q,"seq":%d,"reward":0.25}]}`, cr.ID, cr.ID, seq))
	if out.Results[0].Error == nil || out.Results[0].Error.Code != CodeStepOpen {
		t.Fatalf("out-of-order step = %+v, want %s", out.Results[0], CodeStepOpen)
	}
	if out.Results[1].Steps == nil {
		t.Fatalf("reward after failed step = %+v, want success", out.Results[1])
	}

	// reward+step in body order: both succeed in one batch.
	out = postBatch(t, srv, fmt.Sprintf(
		`{"ops":[{"id":%q,"step":true}]}`, cr.ID))
	seq = *out.Results[0].Seq
	out = postBatch(t, srv, fmt.Sprintf(
		`{"ops":[{"id":%q,"seq":%d,"reward":0.5},{"id":%q,"step":true}]}`, cr.ID, seq, cr.ID))
	if out.Results[0].Steps == nil || out.Results[1].Seq == nil {
		t.Fatalf("closed-loop pair = %+v", out.Results)
	}
}

// TestBatchDeletedSession checks the delete race surface: ops on a
// deleted session answer not_found per-op.
func TestBatchDeletedSession(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"arms":4,"algo":"ducb","seed":5}`, http.StatusCreated, &cr)
	do(t, srv, "DELETE", "/v1/sessions/"+cr.ID, "", http.StatusNoContent, nil)
	out := postBatch(t, srv, fmt.Sprintf(`{"ops":[{"id":%q,"step":true}]}`, cr.ID))
	if out.Results[0].Error == nil || out.Results[0].Error.Code != CodeNotFound {
		t.Fatalf("deleted-session result = %+v, want %s", out.Results[0], CodeNotFound)
	}
}

// TestBatchFaultedSessionUsesScalarPath checks that a session with an
// armed fault spec still works through /v1/batch (via the scalar path:
// its drive controller is not the bare agent, so kernels must not touch
// it).
func TestBatchFaultedSessionUsesScalarPath(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"arms":4,"algo":"ducb","seed":5,"faults":"noise:0.01"}`, http.StatusCreated, &cr)
	sess, ok := srv.Store().Get(cr.ID)
	if !ok {
		t.Fatal("session missing")
	}
	if sess.kernelOK {
		t.Fatal("faulted session marked kernel-eligible")
	}
	out := postBatch(t, srv, fmt.Sprintf(`{"ops":[{"id":%q,"step":true}]}`, cr.ID))
	if out.Results[0].Seq == nil {
		t.Fatalf("faulted-session step = %+v, want success", out.Results[0])
	}
}

// TestBatchBadBodies checks whole-request rejection: a malformed body is
// a 400, not a partial execution.
func TestBatchBadBodies(t *testing.T) {
	srv := New(Config{})
	for _, body := range []string{
		``,
		`{}`,
		`{"ops":{}}`,
		`{"ops":[{"id":"x"}]}`, // neither step nor reward
		`{"ops":[{"id":"x","step":true}]} trailing`,             // trailing data
		`{"ops":[{"id":"x","seq":1}]}`,                          // seq without reward
		`{"ops":[{"id":"x","reward":0.5}]}`,                     // reward without seq
		`{"ops":[{"id":"x","step":true,"extra":1}]}`,            // unknown key
		`{"ops":[{"id":"x\\u0041","step":true}]}`,               // escaped id
		`{"ops":[{"id":"x","seq":01,"reward":0.5}]}`,            // leading zero
		`{"ops":[{"id":"x","seq":1,"reward":+0.5}]}`,            // non-JSON number
		`{"ops":[{"id":"","step":true}]}`,                       // empty id
		`{"ops":[{"id":"x","step":true},]}`,                     // dangling comma
		`{"ops":[{"id":"x","seq":-1,"reward":0.5}]}`,            // negative seq
		`{"ops":[{"id":"x","step":"yes"}]}`,                     // non-bool step
		`{"ops":[{"id":"x","step":true}],"more":true}`,          // unknown top-level key
		`[{"id":"x","step":true}]`,                              // not an object
		`{"ops":[{"id":"x","step":true,"reward":0.5,"seq":1}]}`, // both kinds
	} {
		if code := errCode(t, srv, "POST", "/v1/batch", body, http.StatusBadRequest); code != CodeBadRequest {
			t.Fatalf("body %q: code %q, want %s", body, code, CodeBadRequest)
		}
	}
}

// TestBatchEmptyOps: an empty ops array is a valid no-op batch.
func TestBatchEmptyOps(t *testing.T) {
	srv := New(Config{})
	out := postBatch(t, srv, `{"ops":[]}`)
	if len(out.Results) != 0 {
		t.Fatalf("results = %+v, want empty", out.Results)
	}
}

// TestBatchDecodeAllocs pins the decode path at zero steady-state heap
// allocations: the batch endpoint's entire point is amortization, and a
// per-op allocation would quietly cancel it.
func TestBatchDecodeAllocs(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"ops":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"id":"s-%08x","seq":%d,"reward":0.%d},{"id":"s-%08x","step":true}`, i, i, i%10, i)
	}
	b.WriteString(`]}`)
	body := []byte(b.String())

	ops := make([]batchOp, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		ops, err = parseBatch(body, ops[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("parseBatch allocates %.1f times per body, want 0", allocs)
	}

	res := make([]batchResult, 128)
	for i := range res {
		switch i % 3 {
		case 0:
			res[i] = batchResult{kind: resStep, n: uint64(i), arm: int32(i % 7)}
		case 1:
			res[i] = batchResult{kind: resReward, n: uint64(i)}
		default:
			res[i] = batchResult{kind: resError, code: CodeSeqMismatch, msg: "reward for decision 3, but decision 4 is open"}
		}
	}
	out := make([]byte, 0, 1<<14)
	allocs = testing.AllocsPerRun(200, func() {
		out = appendBatchResults(out[:0], res)
	})
	if allocs != 0 {
		t.Fatalf("appendBatchResults allocates %.1f times per body, want 0", allocs)
	}
}

// TestBatchConcurrent hammers /v1/batch from several goroutines over an
// overlapping session population, with deletes and re-creates mixed in.
// Run under -race this is the batch plane's data-race probe; the
// assertions only require that every response is well-formed — protocol
// conflicts between racing batches are expected and typed.
func TestBatchConcurrent(t *testing.T) {
	srv := New(Config{Store: NewStore(4)})
	const sessions = 24
	ids := make([]string, sessions)
	for i := range ids {
		var cr createResponse
		spec := fmt.Sprintf(`{"arms":5,"algo":"ducb","seed":%d}`, i+1)
		do(t, srv, "POST", "/v1/sessions", spec, http.StatusCreated, &cr)
		ids[i] = cr.ID
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			seqs := make(map[string]uint64)
			for iter := 0; iter < 200; iter++ {
				var b strings.Builder
				b.WriteString(`{"ops":[`)
				n := 1 + rng.IntN(8)
				for i := 0; i < n; i++ {
					if i > 0 {
						b.WriteString(",")
					}
					id := ids[rng.IntN(sessions)]
					if seq, ok := seqs[id]; ok && rng.IntN(2) == 0 {
						fmt.Fprintf(&b, `{"id":%q,"seq":%d,"reward":0.5},{"id":%q,"step":true}`, id, seq, id)
					} else {
						fmt.Fprintf(&b, `{"id":%q,"step":true}`, id)
					}
				}
				b.WriteString(`]}`)
				req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(b.String()))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("batch status %d: %s", rec.Code, rec.Body.String())
					return
				}
				var out wireBatch
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
					t.Errorf("batch response undecodable: %v", err)
					return
				}
				// Remember seen seqs (best effort under racing
				// writers) so later iterations exercise the reward
				// path for real; stale seqs earn typed conflicts.
				for _, r := range out.Results {
					if r.Seq != nil {
						seqs[ids[rng.IntN(sessions)]] = *r.Seq
					}
				}
			}
		}(w)
	}
	// One goroutine churns deletes and creates to race slot reuse
	// against in-flight batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 60; iter++ {
			id := ids[iter%sessions]
			req := httptest.NewRequest("DELETE", "/v1/sessions/"+id, strings.NewReader(""))
			srv.ServeHTTP(httptest.NewRecorder(), req)
			req = httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(`{"arms":5,"algo":"ducb","seed":77}`))
			srv.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	wg.Wait()
}
