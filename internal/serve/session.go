package serve

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"microbandit/internal/core"
	"microbandit/internal/fault"
	"microbandit/internal/scenario"
)

// MaxArms bounds the arm count a session spec may request. Specs cross a
// trust boundary (HTTP, checkpoint files); an unbounded arm count would
// let one request allocate arbitrary memory.
const MaxArms = 4096

// MaxMetaLevels bounds the hierarchical stack depth for the same reason.
const MaxMetaLevels = 64

// Spec describes the decision problem one session serves: the arm count,
// the bandit algorithm driving it, and optional server-side fault
// injection for chaos testing. It is the wire form of a core.Config (or a
// §9 meta-agent stack) and round-trips through session checkpoints.
type Spec struct {
	// Algo is a core.ParseAlgo name ("ducb", "ucb", "eps", "single",
	// "periodic", "static:N"). Empty defaults to "ducb".
	Algo string `json:"algo,omitempty"`
	// Arms is the number of actions, in [1, MaxArms].
	Arms int `json:"arms"`
	// Seed seeds the agent's private RNG (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// MetaPairs, with two or more (c, gamma) entries, builds the §9
	// hierarchical DUCB sweep stack instead of a single agent; Algo is
	// then ignored.
	MetaPairs [][2]float64 `json:"meta_pairs,omitempty"`
	// Faults arms server-side reward-channel fault injection, in
	// fault.ParseSet form. Only the reward-channel kinds (noise,
	// quantize, delay, panic) apply to a served session; the
	// substrate kinds are rejected because a session has no simulated
	// memory system or workload to fault.
	Faults string `json:"faults,omitempty"`
	// MaxContexts bounds the live-context count of a contextual session
	// (Algo "ctx-ducb", "linucb", "ctx-thompson"); 0 means the core
	// default. Rejected for non-contextual algorithms.
	MaxContexts int `json:"max_contexts,omitempty"`
	// Scenario names the decision scenario this session serves arms for
	// (scenario.Names: "prefetch", "dramsched", ...). Purely descriptive
	// plus one convenience: with Arms 0 the scenario's arm count is
	// filled in, and a non-zero Arms that disagrees with the scenario is
	// rejected — a client driving real hardware arms cannot silently
	// bind to the wrong decision space. Unknown names are rejected with
	// the valid list.
	Scenario string `json:"scenario,omitempty"`
}

// isContextualAlgo reports whether name denotes a signature-keyed
// contextual algorithm.
func isContextualAlgo(name string) bool {
	_, ok := core.ContextualBase(name)
	return ok
}

// rewardChannelKinds are the fault kinds a served session can realize.
var rewardChannelKinds = map[fault.Kind]bool{
	fault.Noise: true, fault.Quantize: true, fault.Delay: true, fault.Panic: true,
}

// normalize applies spec defaults in place.
func (sp *Spec) normalize() {
	if sp.Algo == "" && len(sp.MetaPairs) == 0 {
		sp.Algo = "ducb"
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Arms == 0 && sp.Scenario != "" {
		if sc, err := scenario.NewByName(sp.Scenario); err == nil {
			sp.Arms = len(sc.ArmLabels())
		}
		// Unknown names leave Arms at 0; Validate reports the name error
		// (more useful than the arms-range error normalize would cause).
	}
}

// Validate checks the spec without building anything.
func (sp Spec) Validate() error {
	if sp.Scenario != "" {
		sc, err := scenario.NewByName(sp.Scenario)
		if err != nil {
			return err
		}
		if want := len(sc.ArmLabels()); sp.Arms != 0 && sp.Arms != want {
			return fmt.Errorf("arms %d does not match scenario %q (%d arms)", sp.Arms, sp.Scenario, want)
		}
	}
	if sp.Arms < 1 || sp.Arms > MaxArms {
		return fmt.Errorf("arms %d outside [1, %d]", sp.Arms, MaxArms)
	}
	if n := len(sp.MetaPairs); n == 1 || n > MaxMetaLevels {
		return fmt.Errorf("meta_pairs needs 2..%d entries, got %d", MaxMetaLevels, n)
	}
	_, contextual := core.ContextualBase(sp.Algo)
	if sp.MaxContexts != 0 {
		if !contextual {
			return fmt.Errorf("max_contexts applies only to contextual algorithms (ctx-ducb, linucb, ctx-thompson), not %q", sp.Algo)
		}
		if sp.MaxContexts < 0 || sp.MaxContexts > core.MaxMaxContexts {
			return fmt.Errorf("max_contexts %d outside [1, %d]", sp.MaxContexts, core.MaxMaxContexts)
		}
	}
	if contextual && len(sp.MetaPairs) != 0 {
		return fmt.Errorf("meta_pairs and a contextual algorithm cannot be combined")
	}
	set, err := fault.ParseSet(sp.Faults)
	if err != nil {
		return err
	}
	for _, s := range set {
		if !rewardChannelKinds[s.Kind] {
			return fmt.Errorf("fault kind %q does not apply to a served session (valid: noise, quantize, delay, panic)", s.Kind)
		}
	}
	return nil
}

// buildController constructs the spec's controller. The first return is
// the snapshotable agent (a *core.Agent, *core.MetaAgent, or
// core.FixedArm); the second is the controller the request path drives,
// which wraps the agent with the spec's fault set when one is armed.
//
// alloc places plain agents: the store passes its shard-slab allocator
// so agent sessions land in contiguous struct-of-arrays storage, while
// standalone callers pass core.New. Meta stacks and fixed arms are not
// slab material and are built in place.
func buildController(sp Spec, alloc func(core.Config) (*core.Agent, error)) (agent, drive core.Controller, err error) {
	if err := sp.Validate(); err != nil {
		return nil, nil, err
	}
	switch {
	case len(sp.MetaPairs) >= 2:
		m, err := core.NewDUCBSweepMeta(sp.Arms, sp.MetaPairs, true, sp.Seed)
		if err != nil {
			return nil, nil, err
		}
		agent = m
	case strings.HasPrefix(sp.Algo, "static:"):
		c, err := core.ParseAlgo(sp.Algo, sp.Arms, sp.Seed, false)
		if err != nil {
			return nil, nil, err
		}
		agent = c
	case isContextualAlgo(sp.Algo):
		base, _ := core.ContextualBase(sp.Algo)
		c, err := core.NewContextualAgent(core.ContextualConfig{
			Arms: sp.Arms, Algo: base, Seed: sp.Seed, MaxContexts: sp.MaxContexts,
		})
		if err != nil {
			return nil, nil, err
		}
		agent = c
	default:
		cfg, err := core.AlgoConfig(sp.Algo, sp.Arms, sp.Seed, false)
		if err != nil {
			return nil, nil, err
		}
		a, err := alloc(cfg)
		if err != nil {
			return nil, nil, err
		}
		agent = a
	}
	set, err := fault.ParseSet(sp.Faults)
	if err != nil {
		return nil, nil, err
	}
	return agent, fault.Controller(agent, set, sp.Seed), nil
}

// Session is one live decision loop: an agent plus the sequencing state
// that makes the step/reward protocol safe over a lossy, retrying
// transport. All access goes through its mutex; the store's shard locks
// only guard the id → session map.
//
// The sequence protocol: every completed decision increments Seq, and a
// step response carries the Seq of the decision it opens. A reward post
// must quote that Seq; duplicates (the step already rewarded) and
// out-of-order posts (a stale or future Seq) are rejected with typed
// conflict errors, deterministically — the agent never sees them.
type Session struct {
	mu sync.Mutex

	id    string
	spec  Spec
	agent core.Controller // snapshotable: *core.Agent, *core.MetaAgent, or core.FixedArm
	drive core.Controller // agent, behind the spec's fault wrapper when armed

	// Slab placement. Plain-agent sessions live in their shard's
	// struct-of-arrays arena: slab/slot locate the agent's row and
	// slabOrd gives slabs a stable total order for multi-session lock
	// acquisition. kernelOK marks sessions the /v1/batch kernels may
	// sweep directly: slab-resident with no fault wrapper in the drive
	// path. Meta and fixed-arm sessions have a nil slab.
	slab     *core.Slab
	slot     int
	slabOrd  uint64
	kernelOK bool

	// deleted is set (under mu) by Store.Delete after the session left
	// the id map and before its slab slot is freed. An operation that
	// resolved the session earlier must re-check it under mu: past this
	// flag, the agent pointer may alias the slot's next tenant.
	deleted bool

	seq  uint64 // completed decisions
	open bool   // step issued, reward pending
	arm  int    // arm of the open step
}

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Spec returns the session's spec.
func (s *Session) Spec() Spec { return s.spec }

// SessionInfo is the read-model of a session returned by the API.
type SessionInfo struct {
	ID       string `json:"id"`
	Spec     Spec   `json:"spec"`
	Seq      uint64 `json:"seq"`
	Open     bool   `json:"open"`
	Arm      int    `json:"arm"`
	BestArm  int    `json:"best_arm"`
	Restarts int    `json:"restarts,omitempty"`
	Contexts int    `json:"contexts,omitempty"`
}

// Info returns a consistent snapshot of the session's externally visible
// state. The error is non-nil only when the lookup raced a DELETE.
func (s *Session) Info() (SessionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted {
		return SessionInfo{}, errSessionDeleted(s.id)
	}
	info := SessionInfo{
		ID: s.id, Spec: s.spec, Seq: s.seq, Open: s.open, Arm: s.arm,
	}
	switch a := s.agent.(type) {
	case *core.Agent:
		info.BestArm = a.BestArm()
		info.Restarts = a.Restarts()
	case *core.MetaAgent:
		info.BestArm = a.BestLevel()
	case *core.ContextualAgent:
		info.BestArm = a.BestArm()
		info.Contexts = a.Contexts()
	case core.FixedArm:
		info.BestArm = int(a)
	}
	return info, nil
}

// Step opens the next decision: it asks the agent for an arm and returns
// it with the decision's sequence number. A second Step before the open
// decision's reward is a protocol conflict, not an agent panic.
func (s *Session) Step() (seq uint64, arm int, err error) {
	return s.StepWithContext(nil)
}

// SignatureFromVector maps a wire context vector to a core.Signature. The
// vector is [phase, mpki, bw_util]: the phase must be a non-negative
// integer (it is used verbatim, modulo the 16-bit field width); the MPKI
// and bandwidth-utilization values are bucketed by the core banding
// functions. Wrong lengths and non-finite values are errors, so a typo'd
// client sees a 400 instead of silently landing in a garbage context.
func SignatureFromVector(v []float64) (core.Signature, error) {
	if len(v) != 3 {
		return 0, fmt.Errorf("context needs exactly 3 values [phase, mpki, bw_util], got %d", len(v))
	}
	for i, f := range v {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("context[%d] is not finite", i)
		}
	}
	phase := int(v[0])
	if float64(phase) != v[0] || phase < 0 {
		return 0, fmt.Errorf("context phase %v is not a non-negative integer", v[0])
	}
	return core.SignatureOf(phase, v[1], v[2]), nil
}

// StepWithContext is Step with an optional context vector: a non-nil
// ctxVec selects the signature context the decision runs in. Sending a
// context to a non-contextual session is a bad request; omitting it on a
// contextual session keeps the most recently selected context (the zero
// signature before any context has been sent).
func (s *Session) StepWithContext(ctxVec []float64) (seq uint64, arm int, err error) {
	var sig core.Signature
	if ctxVec != nil {
		if sig, err = SignatureFromVector(ctxVec); err != nil {
			return 0, 0, &ProtocolError{Code: CodeBadRequest, Msg: err.Error()}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted {
		return 0, 0, errSessionDeleted(s.id)
	}
	// A context on a non-contextual session is rejected before the
	// step-open check: the request is malformed no matter what protocol
	// state the session is in, so the answer cannot depend on op ordering
	// (the batch plane runs demoted ops after kernel ops).
	var cs core.ContextSetter
	if ctxVec != nil {
		var ok bool
		if cs, ok = s.agent.(core.ContextSetter); !ok {
			return 0, 0, &ProtocolError{
				Code: CodeBadRequest,
				Msg:  fmt.Sprintf("session algorithm %q does not accept a context", s.spec.Algo),
			}
		}
	}
	if err := s.lockedCheckStep(); err != nil {
		return 0, 0, err
	}
	if cs != nil {
		cs.SetContext(sig)
	}
	arm = s.drive.Step()
	return s.lockedCommitStep(arm), arm, nil
}

// Reward closes the decision identified by seq with the observed reward.
// Duplicate and out-of-order posts are rejected deterministically: the
// reward reaches the agent exactly once, in order, or not at all.
func (s *Session) Reward(seq uint64, reward float64) (steps uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted {
		return 0, errSessionDeleted(s.id)
	}
	if err := s.lockedCheckReward(seq); err != nil {
		return 0, err
	}
	s.drive.Reward(reward)
	return s.lockedCommitReward(), nil
}

// ---------------------------------------------------------------------
// Locked protocol halves
//
// The /v1/batch handler validates and commits many sessions' operations
// around two slab kernel sweeps, holding every group session's lock
// across the whole group so each session's protocol check and kernel
// effect form one atomic unit. These split check/commit halves are the
// single implementation of the sequence protocol: the scalar Step and
// Reward above are built from them, so the batch plane cannot drift from
// the single-op semantics. All four must be called with s.mu held.

// lockedCheckStep validates that a step may open.
func (s *Session) lockedCheckStep() error {
	if s.open {
		return &ProtocolError{
			Code: CodeStepOpen,
			Msg:  fmt.Sprintf("decision %d is awaiting its reward", s.seq),
		}
	}
	return nil
}

// lockedCommitStep records an opened step and returns its sequence
// number.
func (s *Session) lockedCommitStep(arm int) (seq uint64) {
	s.open = true
	s.arm = arm
	return s.seq
}

// lockedCheckReward validates a reward post against the open decision.
func (s *Session) lockedCheckReward(seq uint64) error {
	if !s.open {
		return &ProtocolError{
			Code: CodeNoOpenStep,
			Msg:  fmt.Sprintf("no open decision (next step will be %d); duplicate reward?", s.seq),
		}
	}
	if seq != s.seq {
		return &ProtocolError{
			Code: CodeSeqMismatch,
			Msg:  fmt.Sprintf("reward for decision %d, but decision %d is open", seq, s.seq),
		}
	}
	return nil
}

// lockedCommitReward records a delivered reward and returns the
// completed decision count.
func (s *Session) lockedCommitReward() (steps uint64) {
	s.open = false
	s.seq++
	return s.seq
}
