package serve

import "fmt"

// API error codes. They are part of the wire protocol: clients switch on
// the code, humans read the message.
const (
	// CodeBadRequest marks malformed or invalid request bodies and specs.
	CodeBadRequest = "bad_request"
	// CodeNotFound marks an unknown session id.
	CodeNotFound = "not_found"
	// CodeStepOpen rejects a step posted while the previous decision
	// still awaits its reward.
	CodeStepOpen = "step_open"
	// CodeNoOpenStep rejects a reward with no decision open (typically a
	// duplicate delivery).
	CodeNoOpenStep = "no_open_step"
	// CodeSeqMismatch rejects an out-of-order reward: its sequence
	// number does not match the open decision.
	CodeSeqMismatch = "seq_mismatch"
	// CodeInternal marks a recovered handler panic (e.g. an injected
	// chaos fault); the session's open decision survives for retry.
	CodeInternal = "internal"
	// CodeConflict rejects a PUT create whose id is taken by a session
	// with a different spec.
	CodeConflict = "conflict"
	// CodeDraining marks a 503 from a draining server; the response
	// carries a Retry-After header and the operation is safe to retry
	// (here after the drain, or on the session's new node).
	CodeDraining = "draining"
	// CodeUnavailable marks a 503 from the cluster router when a
	// session's node is down and its replica has not been promoted yet.
	// Like CodeDraining it arrives with a Retry-After header.
	CodeUnavailable = "unavailable"
)

// ProtocolError is a deterministic rejection of a step/reward request
// that violates the session's sequencing protocol. It maps to HTTP 409.
type ProtocolError struct {
	Code string
	Msg  string
}

// Error implements error.
func (e *ProtocolError) Error() string { return e.Code + ": " + e.Msg }

// errSessionDeleted reports an operation that raced a DELETE: the caller
// resolved the session before it left the store. It carries CodeNotFound
// because, from the client's view, the session no longer exists.
func errSessionDeleted(id string) *ProtocolError {
	return &ProtocolError{Code: CodeNotFound, Msg: "session " + id + " was deleted"}
}

// CheckpointError reports an unreadable or structurally invalid
// checkpoint file. Decoding is total: malformed JSON, truncated files,
// and inconsistent session records produce this error, never a panic.
type CheckpointError struct {
	Reason string
	// Offset is the byte offset the decode failed at, when known (JSON
	// syntax and type errors carry one; structural validation failures
	// leave it 0). A truncated or bit-flipped checkpoint names the
	// damage site so an operator can diff it against a replica's copy.
	Offset int64
}

// Error implements error.
func (e *CheckpointError) Error() string {
	if e.Offset > 0 {
		return fmt.Sprintf("serve: invalid checkpoint: %s (at byte offset %d)", e.Reason, e.Offset)
	}
	return "serve: invalid checkpoint: " + e.Reason
}
