package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"microbandit/internal/obs"
)

// do runs one request against the handler and decodes the JSON body (when
// out is non-nil), failing the test on a status mismatch.
func do(t *testing.T, h http.Handler, method, path, body string, wantStatus int, out any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, w.Code, wantStatus, w.Body.String())
	}
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, w.Body.String(), err)
		}
	}
}

// errCode extracts the error envelope's code from a response body.
func errCode(t *testing.T, h http.Handler, method, path, body string, wantStatus int) string {
	t.Helper()
	var eb errorBody
	do(t, h, method, path, body, wantStatus, &eb)
	return eb.Error.Code
}

func TestHealthz(t *testing.T) {
	srv := New(Config{Version: "test-1.2.3"})
	var hz healthzResponse
	do(t, srv, "GET", "/healthz", "", http.StatusOK, &hz)
	if hz.Status != "ok" || hz.Version != "test-1.2.3" || hz.Sessions != 0 {
		t.Fatalf("healthz = %+v", hz)
	}
	if hz.Shards != DefaultShards {
		t.Fatalf("Shards = %d, want %d", hz.Shards, DefaultShards)
	}
}

func TestSessionLifecycleOverHTTP(t *testing.T) {
	srv := New(Config{})

	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ucb","arms":3,"seed":42}`, http.StatusCreated, &cr)
	if cr.ID == "" || cr.Arms != 3 {
		t.Fatalf("create = %+v", cr)
	}
	base := "/v1/sessions/" + cr.ID

	var ls listResponse
	do(t, srv, "GET", "/v1/sessions", "", http.StatusOK, &ls)
	if len(ls.Sessions) != 1 || ls.Sessions[0] != cr.ID {
		t.Fatalf("list = %+v", ls)
	}

	// A full decision loop.
	for i := 0; i < 5; i++ {
		var st stepResponse
		do(t, srv, "POST", base+"/step", "", http.StatusOK, &st)
		if st.Seq != uint64(i) || st.Arm < 0 || st.Arm >= 3 {
			t.Fatalf("step %d = %+v", i, st)
		}
		var rw rewardResponse
		body := fmt.Sprintf(`{"seq":%d,"reward":0.5}`, st.Seq)
		do(t, srv, "POST", base+"/reward", body, http.StatusOK, &rw)
		if rw.Steps != uint64(i+1) {
			t.Fatalf("reward %d steps = %d", i, rw.Steps)
		}
	}

	var info SessionInfo
	do(t, srv, "GET", base, "", http.StatusOK, &info)
	if info.Seq != 5 || info.Open {
		t.Fatalf("info = %+v", info)
	}

	do(t, srv, "DELETE", base, "", http.StatusNoContent, nil)
	if code := errCode(t, srv, "GET", base, "", http.StatusNotFound); code != CodeNotFound {
		t.Fatalf("get-after-delete code = %q", code)
	}
}

func TestProtocolConflictsOverHTTP(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"eps","arms":2}`, http.StatusCreated, &cr)
	base := "/v1/sessions/" + cr.ID

	if code := errCode(t, srv, "POST", base+"/reward", `{"seq":0,"reward":1}`, http.StatusConflict); code != CodeNoOpenStep {
		t.Fatalf("reward-first code = %q, want %s", code, CodeNoOpenStep)
	}
	do(t, srv, "POST", base+"/step", "", http.StatusOK, nil)
	if code := errCode(t, srv, "POST", base+"/step", "", http.StatusConflict); code != CodeStepOpen {
		t.Fatalf("double-step code = %q, want %s", code, CodeStepOpen)
	}
	if code := errCode(t, srv, "POST", base+"/reward", `{"seq":9,"reward":1}`, http.StatusConflict); code != CodeSeqMismatch {
		t.Fatalf("wrong-seq code = %q, want %s", code, CodeSeqMismatch)
	}
	// The open decision survives all the rejections above.
	do(t, srv, "POST", base+"/reward", `{"seq":0,"reward":1}`, http.StatusOK, nil)
}

func TestBadRequests(t *testing.T) {
	srv := New(Config{})
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"POST", "/v1/sessions", `{not json`, http.StatusBadRequest, CodeBadRequest},
		{"POST", "/v1/sessions", `{"arms":0}`, http.StatusBadRequest, CodeBadRequest},
		{"POST", "/v1/sessions", `{"arms":2,"algo":"nope"}`, http.StatusBadRequest, CodeBadRequest},
		{"POST", "/v1/sessions", `{"arms":2} trailing`, http.StatusBadRequest, CodeBadRequest},
		{"POST", "/v1/sessions", `{"arms":2,"faults":"stuckarm:1"}`, http.StatusBadRequest, CodeBadRequest},
		{"GET", "/v1/sessions/s-deadbeef", "", http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/sessions/s-deadbeef/step", "", http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/sessions/s-deadbeef/reward", `{"seq":0}`, http.StatusNotFound, CodeNotFound},
		{"DELETE", "/v1/sessions/s-deadbeef", "", http.StatusNotFound, CodeNotFound},
		{"POST", "/v1/checkpoint", "", http.StatusBadRequest, CodeBadRequest}, // no path configured
	}
	for _, c := range cases {
		if code := errCode(t, srv, c.method, c.path, c.body, c.status); code != c.code {
			t.Errorf("%s %s: code %q, want %q", c.method, c.path, code, c.code)
		}
	}
}

// TestPanicFaultRecovered arms the chaos panic fault at full intensity and
// verifies the handler answers 500 instead of crashing, and that the
// session remains usable.
func TestPanicFaultRecovered(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ucb","arms":2,"faults":"panic:1"}`, http.StatusCreated, &cr)
	base := "/v1/sessions/" + cr.ID

	// The fault panics at a pseudo-random step in the first few dozen
	// decisions; drive until it fires.
	fired := false
	for i := 0; i < 40 && !fired; i++ {
		var st stepResponse
		do(t, srv, "POST", base+"/step", "", http.StatusOK, &st)
		body := fmt.Sprintf(`{"seq":%d,"reward":1}`, st.Seq)
		req := httptest.NewRequest("POST", base+"/reward", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK:
			continue
		case http.StatusInternalServerError:
			var eb errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code != CodeInternal {
				t.Fatalf("panic response = %q (decode err %v)", w.Body.String(), err)
			}
			fired = true
		default:
			t.Fatalf("reward %d: status %d body %s", i, w.Code, w.Body.String())
		}
	}
	if !fired {
		t.Fatal("panic fault never fired")
	}
	// The server survives; the session still answers.
	var info SessionInfo
	do(t, srv, "GET", base, "", http.StatusOK, &info)
	var hz healthzResponse
	do(t, srv, "GET", "/healthz", "", http.StatusOK, &hz)
	if hz.Sessions != 1 {
		t.Fatalf("sessions after panic = %d", hz.Sessions)
	}
}

func TestNoiseFaultSessionServes(t *testing.T) {
	srv := New(Config{})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ducb","arms":3,"seed":5,"faults":"noise:0.2,delay:0.5"}`, http.StatusCreated, &cr)
	base := "/v1/sessions/" + cr.ID
	for i := 0; i < 20; i++ {
		var st stepResponse
		do(t, srv, "POST", base+"/step", "", http.StatusOK, &st)
		do(t, srv, "POST", base+"/reward", fmt.Sprintf(`{"seq":%d,"reward":0.3}`, st.Seq), http.StatusOK, nil)
	}
}

// TestObsWiring verifies telemetry flows from the request path into the
// configured recorder, and that a telemetry-free server emits nothing.
func TestObsWiring(t *testing.T) {
	var rec obs.Buffer
	srv := New(Config{Obs: &rec, ObsEvery: 2})
	var cr createResponse
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ucb","arms":2,"seed":3}`, http.StatusCreated, &cr)
	base := "/v1/sessions/" + cr.ID
	for i := 0; i < 6; i++ {
		var st stepResponse
		do(t, srv, "POST", base+"/step", "", http.StatusOK, &st)
		do(t, srv, "POST", base+"/reward", fmt.Sprintf(`{"seq":%d,"reward":1}`, st.Seq), http.StatusOK, nil)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	if evs[0].Kind != obs.KindRunStart || evs[0].Label != cr.ID {
		t.Fatalf("first event = %+v, want RunStart for %s", evs[0], cr.ID)
	}
	kinds := map[obs.Kind]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	if kinds[obs.KindArm] != 6 || kinds[obs.KindReward] != 6 {
		t.Fatalf("event kinds = %v, want 6 arm choices and 6 rewards", kinds)
	}
}

// TestConcurrentHTTP drives many sessions from many goroutines through
// the full handler stack; meaningful under -race.
func TestConcurrentHTTP(t *testing.T) {
	var rec obs.Buffer
	srv := New(Config{Obs: &rec, ObsEvery: 4})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"algo":"ducb","arms":4,"seed":%d}`, w+1)
			req := httptest.NewRequest("POST", "/v1/sessions", strings.NewReader(body))
			rw := httptest.NewRecorder()
			srv.ServeHTTP(rw, req)
			if rw.Code != http.StatusCreated {
				t.Errorf("create: %d %s", rw.Code, rw.Body.String())
				return
			}
			var cr createResponse
			if err := json.Unmarshal(rw.Body.Bytes(), &cr); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			base := "/v1/sessions/" + cr.ID
			for i := 0; i < 40; i++ {
				req := httptest.NewRequest("POST", base+"/step", strings.NewReader(""))
				rw := httptest.NewRecorder()
				srv.ServeHTTP(rw, req)
				if rw.Code != http.StatusOK {
					t.Errorf("step: %d %s", rw.Code, rw.Body.String())
					return
				}
				var st stepResponse
				if err := json.Unmarshal(rw.Body.Bytes(), &st); err != nil {
					t.Errorf("decode step: %v", err)
					return
				}
				body := fmt.Sprintf(`{"seq":%d,"reward":%g}`, st.Seq, float64(st.Arm)/4)
				req = httptest.NewRequest("POST", base+"/reward", strings.NewReader(body))
				rw = httptest.NewRecorder()
				srv.ServeHTTP(rw, req)
				if rw.Code != http.StatusOK {
					t.Errorf("reward: %d %s", rw.Code, rw.Body.String())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := srv.Store().Len(); got != workers {
		t.Fatalf("sessions = %d, want %d", got, workers)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	srv := New(Config{CheckpointPath: path})
	do(t, srv, "POST", "/v1/sessions", `{"algo":"ucb","arms":2}`, http.StatusCreated, nil)
	var ck checkpointResponse
	do(t, srv, "POST", "/v1/checkpoint", "", http.StatusOK, &ck)
	if ck.Path != path || ck.Sessions != 1 {
		t.Fatalf("checkpoint = %+v", ck)
	}
	st, err := LoadCheckpoint(path, 0)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if st.Len() != 1 {
		t.Fatalf("restored sessions = %d", st.Len())
	}
}

// TestResponsesAreJSON checks the content type and the error envelope
// shape on a representative success and failure.
func TestResponsesAreJSON(t *testing.T) {
	srv := New(Config{})
	req := httptest.NewRequest("GET", "/healthz", strings.NewReader(""))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !bytes.HasSuffix(w.Body.Bytes(), []byte("\n")) {
		t.Fatal("body not newline-terminated")
	}

	req = httptest.NewRequest("GET", "/v1/sessions/s-none", strings.NewReader(""))
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body not JSON: %v", err)
	}
	if eb.Error.Code != CodeNotFound || eb.Error.Message == "" {
		t.Fatalf("error envelope = %+v", eb)
	}
}
