package serve

import (
	"errors"
	"io"
	"net/http"
	"slices"
	"sync"
)

// This file is the /v1/batch execution plane. One request carries many
// step and reward operations; the handler amortizes everything the
// scalar endpoints pay per decision — HTTP framing, body decode, shard
// lookup, response encode — and, for fault-free slab-resident sessions,
// replaces per-session virtual dispatch with the slab kernels
// (core.Slab.StepBatch / RewardBatch) sweeping contiguous agent records.
//
// Semantics are exactly the scalar protocol's. Each operation succeeds
// or fails independently, with the same typed codes the scalar endpoints
// answer (the response is HTTP 200 even when operations inside failed;
// clients switch on per-result error codes). Within one batch, a
// session's operations apply in body order; the kernel plane accepts the
// one hot pattern — an optional reward (closing the open decision)
// followed by an optional step (opening the next) — and demotes anything
// else about a session to the scalar path, so arbitrary batches remain
// correct, just not vectorized.
//
// Locking: operations are sorted by (slab ordinal, slot, body position)
// and processed one slab group at a time, acquiring session locks in
// slot order — a globally consistent order, so concurrent batches cannot
// deadlock — and holding them across the group's two kernel sweeps so
// each session's protocol check and kernel effect form one atomic unit.
// Every session lock taken under a group is released by a deferred
// unlock, keeping a panicking agent from stranding the whole shard.

// notFoundMsg is the canned per-op message for unknown or deleted
// sessions: canned so the kernel path never formats strings.
const notFoundMsg = "no such session"

// Kernel-plane ops sort by (slab ordinal, slot, body position), packed
// into one uint64 — ord in the top 40 bits, slot in 12, body index in 12
// — so the per-batch sort runs on plain integers with no comparator
// calls. MaxBatchOps caps the index at 12 bits and slab chunks hold at
// most 512 slots; a session whose chunk ordinal ever exceeded 40 bits
// (unreachable in practice) simply demotes to the scalar path.
const (
	opIdxBits   = 12
	opSlotBits  = 12
	opOrdShift  = opIdxBits + opSlotBits
	opIdxMask   = 1<<opIdxBits - 1
	maxPackable = 1 << (64 - opOrdShift)
)

func packOpKey(ord uint64, slot, idx int) uint64 {
	return ord<<opOrdShift | uint64(slot)<<opIdxBits | uint64(idx)
}

// runInfo is one kernel-eligible session's validated slice of a batch:
// at most one reward (applied first) and one step, by op index (-1 when
// absent). Built and consumed under the session's lock.
type runInfo struct {
	se   *Session
	rwOp int32
	stOp int32
}

// batchScratch is one request's working memory, pooled so a warm server
// serves /v1/batch without steady-state allocation.
type batchScratch struct {
	body     []byte
	ops      []batchOp
	res      []batchResult
	sess     []*Session
	shardOf  []int32
	counts   []int32
	order    []int32
	korder   []uint64
	direct   []int32
	locked   []*Session
	runs     []runInfo
	kslots   []int32
	krewards []float64
	kruns    []int32
	karms    []int32
	out      []byte
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grown returns s resized to n elements, reusing its backing array when
// it is big enough. Contents are unspecified.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// readAll reads r to EOF into dst's backing array (appending from
// dst[:0]-style inputs), growing it only when the body outgrows the
// recycled capacity.
func readAll(dst []byte, r io.Reader) ([]byte, error) {
	if cap(dst) == 0 {
		dst = make([]byte, 0, 4096)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// protoResult converts a scalar-path error into a per-op result.
func protoResult(err error) batchResult {
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return batchResult{kind: resError, code: pe.Code, msg: pe.Msg}
	}
	return batchResult{kind: resError, code: CodeInternal, msg: err.Error()}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)

	var err error
	sc.body, err = readAll(sc.body[:0], http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "body: "+err.Error())
		return
	}
	sc.ops, err = parseBatch(sc.body, sc.ops[:0])
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "body: "+err.Error())
		return
	}

	s.runBatch(sc)

	sc.out = appendBatchResults(sc.out[:0], sc.res)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.out)
}

// runBatch resolves and executes sc.ops, filling sc.res one result per
// op in body order.
func (s *Server) runBatch(sc *batchScratch) {
	st := s.store
	ops := sc.ops
	n := len(ops)
	sc.res = grown(sc.res, n)
	res := sc.res
	for i := range res {
		res[i] = batchResult{}
	}
	if n == 0 {
		return
	}

	// Resolve sessions shard-grouped: a counting sort by shard index
	// lets each shard's read lock be taken once per batch instead of
	// once per op.
	sc.sess = grown(sc.sess, n)
	sess := sc.sess
	ns := len(st.shards)
	sc.counts = grown(sc.counts, ns)
	counts := sc.counts
	for i := range counts {
		counts[i] = 0
	}
	sc.shardOf = grown(sc.shardOf, n)
	for i := range ops {
		si := shardIndex(st, sc.body[ops[i].idOff:ops[i].idEnd])
		sc.shardOf[i] = int32(si)
		counts[si]++
	}
	sc.order = grown(sc.order, n)
	order := sc.order
	// counts becomes write cursors: after the scatter, counts[si] is the
	// end offset of shard si's bucket.
	cursor := int32(0)
	for i := range counts {
		c := counts[i]
		counts[i] = cursor
		cursor += c
	}
	for i := range ops {
		si := sc.shardOf[i]
		order[counts[si]] = int32(i)
		counts[si]++
	}
	lo := 0
	for si := 0; si < ns; si++ {
		hi := int(counts[si])
		if hi == lo {
			continue
		}
		sh := &st.shards[si]
		sh.mu.RLock()
		for _, oi := range order[lo:hi] {
			op := &ops[oi]
			sess[oi] = sh.m[string(sc.body[op.idOff:op.idEnd])]
		}
		sh.mu.RUnlock()
		lo = hi
	}

	// Partition: kernel-eligible ops sort into slab groups; everything
	// else (unknown ids answered here; fault-wrapped, meta, and fixed
	// sessions) goes to the scalar path.
	sc.korder = sc.korder[:0]
	sc.direct = sc.direct[:0]
	for i := 0; i < n; i++ {
		se := sess[i]
		switch {
		case se == nil:
			res[i] = batchResult{kind: resError, code: CodeNotFound, msg: notFoundMsg}
		case se.kernelOK && se.slabOrd < maxPackable && !ops[i].hasCtx:
			// Context-carrying ops always take the scalar path, so a ctx
			// sent to a non-contextual session gets the same bad_request
			// the scalar endpoint answers instead of being ignored.
			sc.korder = append(sc.korder, packOpKey(se.slabOrd, se.slot, i))
		default:
			sc.direct = append(sc.direct, int32(i))
		}
	}
	slices.Sort(sc.korder)

	for i := 0; i < len(sc.korder); {
		g := i
		ord := sc.korder[i] >> opOrdShift
		for i < len(sc.korder) && sc.korder[i]>>opOrdShift == ord {
			i++
		}
		s.runBatchGroup(sc, sc.korder[g:i])
	}

	// Scalar path, in body order (demotions above arrive out of order).
	slices.Sort(sc.direct)
	for _, oi := range sc.direct {
		op := &ops[oi]
		se := sess[oi]
		if op.kind == opStep {
			var ctxVec []float64
			if op.hasCtx {
				ctxVec = op.ctx[:]
			}
			seq, arm, err := se.StepWithContext(ctxVec)
			if err != nil {
				res[oi] = protoResult(err)
			} else {
				res[oi] = batchResult{kind: resStep, n: seq, arm: int32(arm)}
			}
		} else {
			steps, err := se.Reward(op.seq, op.reward)
			if err != nil {
				res[oi] = protoResult(err)
			} else {
				res[oi] = batchResult{kind: resReward, n: steps}
			}
		}
	}
}

// runBatchGroup executes one slab group: the ops in group all target
// kernel-eligible sessions in the same slab, pre-sorted by packed
// (slot, body position) key.
func (s *Server) runBatchGroup(sc *batchScratch, group []uint64) {
	ops, sess, res := sc.ops, sc.sess, sc.res
	slab := sess[group[0]&opIdxMask].slab

	sc.locked = sc.locked[:0]
	defer func() {
		for _, se := range sc.locked {
			se.mu.Unlock()
		}
	}()

	// Walk slot runs: lock each run's session (slot-ascending, the
	// global order), check the run is the kernel pattern, and demote
	// anything else to the scalar path.
	sc.runs = sc.runs[:0]
	for j := 0; j < len(group); {
		rs := j
		slot := group[j] >> opIdxBits // ord|slot prefix: ord is constant here
		for j < len(group) && group[j]>>opIdxBits == slot {
			j++
		}
		runOps := group[rs:j]
		op0 := int32(runOps[0] & opIdxMask)
		se := sess[op0]
		ok := true
		// A slot run spanning two session pointers means the slot was
		// freed and re-let mid-request; demote, the scalar path
		// re-resolves nothing and answers each op from its own session.
		for _, v := range runOps[1:] {
			if sess[v&opIdxMask] != se {
				ok = false
				break
			}
		}
		rw, st := int32(-1), int32(-1)
		if ok {
			switch {
			case len(runOps) == 1 && ops[op0].kind == opReward:
				rw = op0
			case len(runOps) == 1:
				st = op0
			case len(runOps) == 2 && ops[op0].kind == opReward && ops[runOps[1]&opIdxMask].kind == opStep:
				rw, st = op0, int32(runOps[1]&opIdxMask)
			default:
				ok = false
			}
		}
		if !ok {
			for _, v := range runOps {
				sc.direct = append(sc.direct, int32(v&opIdxMask))
			}
			continue
		}
		se.mu.Lock()
		sc.locked = append(sc.locked, se)
		if se.deleted {
			for _, v := range runOps {
				res[v&opIdxMask] = batchResult{kind: resError, code: CodeNotFound, msg: notFoundMsg}
			}
			continue
		}
		sc.runs = append(sc.runs, runInfo{se: se, rwOp: rw, stOp: st})
	}

	// Reward sweep: validate each run's reward against the protocol,
	// kernel-apply the valid ones, then commit their sequencing state.
	sc.kslots = sc.kslots[:0]
	sc.krewards = sc.krewards[:0]
	sc.kruns = sc.kruns[:0]
	for ri := range sc.runs {
		run := &sc.runs[ri]
		if run.rwOp < 0 {
			continue
		}
		op := &ops[run.rwOp]
		if err := run.se.lockedCheckReward(op.seq); err != nil {
			res[run.rwOp] = protoResult(err)
			continue
		}
		sc.kslots = append(sc.kslots, int32(run.se.slot))
		sc.krewards = append(sc.krewards, op.reward)
		sc.kruns = append(sc.kruns, int32(ri))
	}
	slab.RewardBatch(sc.kslots, sc.krewards)
	for _, ri := range sc.kruns {
		run := &sc.runs[ri]
		steps := run.se.lockedCommitReward()
		res[run.rwOp] = batchResult{kind: resReward, n: steps}
	}

	// Step sweep: checks run against post-reward state, so a session's
	// reward+step pair behaves exactly like the two scalar calls.
	sc.kslots = sc.kslots[:0]
	sc.kruns = sc.kruns[:0]
	for ri := range sc.runs {
		run := &sc.runs[ri]
		if run.stOp < 0 {
			continue
		}
		if err := run.se.lockedCheckStep(); err != nil {
			res[run.stOp] = protoResult(err)
			continue
		}
		sc.kslots = append(sc.kslots, int32(run.se.slot))
		sc.kruns = append(sc.kruns, int32(ri))
	}
	sc.karms = grown(sc.karms, len(sc.kslots))
	slab.StepBatch(sc.kslots, sc.karms)
	for i, ri := range sc.kruns {
		run := &sc.runs[ri]
		arm := sc.karms[i]
		seq := run.se.lockedCommitStep(int(arm))
		res[run.stOp] = batchResult{kind: resStep, n: seq, arm: arm}
	}
}
