package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultShards is the store's default shard count.
const DefaultShards = 64

// Store is the sharded session table. Session ids hash onto a
// power-of-two number of shards, each guarded by its own RWMutex, so
// concurrent request handling contends only within a shard — the map
// lock is never the bottleneck; per-session work serializes on the
// session's own mutex.
type Store struct {
	shards []shard
	mask   uint32
	nextID atomic.Uint64
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*Session
}

// NewStore returns a store with at least the requested number of shards,
// rounded up to a power of two. n <= 0 selects DefaultShards.
func NewStore(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	st := &Store{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*Session)
	}
	return st
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// shardFor hashes id onto its shard (FNV-1a).
func (st *Store) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &st.shards[h&st.mask]
}

// Create builds a session from spec under a fresh id and registers it.
func (st *Store) Create(spec Spec) (*Session, error) {
	spec.normalize()
	agent, drive, err := buildAgent(spec)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("s-%08x", st.nextID.Add(1))
	s := &Session{id: id, spec: spec, agent: agent, drive: drive}
	sh := st.shardFor(id)
	sh.mu.Lock()
	sh.m[id] = s
	sh.mu.Unlock()
	return s, nil
}

// insert registers a fully built session (checkpoint restore). It fails
// on a duplicate id.
func (st *Store) insert(s *Session) error {
	sh := st.shardFor(s.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[s.id]; ok {
		return fmt.Errorf("duplicate session id %q", s.id)
	}
	sh.m[s.id] = s
	return nil
}

// Get returns the session with the given id.
func (st *Store) Get(id string) (*Session, bool) {
	sh := st.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	return s, ok
}

// Delete removes the session with the given id, reporting whether it
// existed.
func (st *Store) Delete(id string) bool {
	sh := st.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	return ok
}

// Len returns the number of live sessions.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns every live session id, sorted, so checkpoint files and
// list responses are deterministic regardless of shard layout.
func (st *Store) IDs() []string {
	var ids []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}
