package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"microbandit/internal/core"
)

// DefaultShards is the store's default shard count.
const DefaultShards = 64

// Store is the sharded session table. Session ids hash onto a
// power-of-two number of shards, each guarded by its own RWMutex, so
// concurrent request handling contends only within a shard — the map
// lock is never the bottleneck; per-session work serializes on the
// session's own mutex.
//
// Each shard also owns the slab arenas its plain-agent sessions live in:
// contiguous struct-of-arrays chunks, one arena per arm count, allocated
// and freed under the shard's write lock. Keeping arenas shard-local
// means a batch request that grouped its operations by shard touches
// slabs no other shard's traffic allocates from.
type Store struct {
	shards  []shard
	mask    uint32
	nextID  atomic.Uint64
	slabSeq atomic.Uint64 // total order over slab chunks, for batch lock ordering
}

type shard struct {
	mu     sync.RWMutex
	m      map[string]*Session
	arenas map[int]*slabArena // arm count → arena
}

// slabArena is one shard's slab storage for a single arm count: a list
// of fixed-capacity chunks, grown one chunk at a time as sessions
// accumulate. Chunks are never reclaimed — freed slots recycle within
// their chunk — so agent pointers and table views stay valid for a
// session's whole life.
type slabArena struct {
	chunks []*arenaChunk
}

// arenaChunk pairs a slab with its store-wide allocation ordinal. The
// ordinal gives every chunk a stable total order; the batch plane sorts
// multi-session lock acquisition by (ord, slot) to stay deadlock-free.
type arenaChunk struct {
	slab *core.Slab
	ord  uint64
}

// chunkSlots sizes a slab chunk: aim for ~8192 table floats per chunk so
// chunks are big enough to amortize the per-chunk bookkeeping but small
// enough that a shard with three sessions hasn't reserved megabytes.
func chunkSlots(arms int) int {
	const targetFloats = 8192
	n := targetFloats / arms
	if n < 16 {
		n = 16
	}
	if n > 512 {
		n = 512
	}
	return n
}

// NewStore returns a store with at least the requested number of shards,
// rounded up to a power of two. n <= 0 selects DefaultShards.
func NewStore(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	st := &Store{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*Session)
		st.shards[i].arenas = make(map[int]*slabArena)
	}
	return st
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// shardIndex hashes an id onto its shard index (FNV-1a). It is generic
// over string and []byte so the batch parser, which works on slices of
// the request body, routes ids without allocating strings.
func shardIndex[T string | []byte](st *Store, id T) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h & st.mask
}

// shardFor hashes id onto its shard.
func (st *Store) shardFor(id string) *shard {
	return &st.shards[shardIndex(st, id)]
}

// lockedChunkFor returns a chunk with at least one free slot for the
// given arm count, growing the arena when every chunk is full. The
// caller must hold sh.mu for writing.
func (st *Store) lockedChunkFor(sh *shard, arms int) *arenaChunk {
	ar := sh.arenas[arms]
	if ar == nil {
		ar = &slabArena{}
		sh.arenas[arms] = ar
	}
	for _, c := range ar.chunks {
		if c.slab.Live() < c.slab.Cap() {
			return c
		}
	}
	c := &arenaChunk{
		slab: core.MustNewSlab(arms, chunkSlots(arms)),
		ord:  st.slabSeq.Add(1),
	}
	ar.chunks = append(ar.chunks, c)
	return c
}

// lockedBuildSession constructs a session in sh, placing plain agents in
// the shard's slab arena. The caller must hold sh.mu for writing and
// registers the returned session itself.
func (st *Store) lockedBuildSession(sh *shard, id string, spec Spec) (*Session, error) {
	var chunk *arenaChunk
	var slot int
	alloc := func(cfg core.Config) (*core.Agent, error) {
		c := st.lockedChunkFor(sh, cfg.Arms)
		a, sl, err := c.slab.Alloc(cfg)
		if err != nil {
			return nil, err
		}
		chunk, slot = c, sl
		return a, nil
	}
	agent, drive, err := buildController(spec, alloc)
	if err != nil {
		if chunk != nil {
			chunk.slab.Free(slot)
		}
		return nil, err
	}
	s := &Session{id: id, spec: spec, agent: agent, drive: drive}
	if chunk != nil {
		s.slab, s.slot, s.slabOrd = chunk.slab, slot, chunk.ord
		// The batch kernels drive the agent directly, bypassing the
		// session's drive controller; that is only sound when the drive
		// IS the agent (fault.Controller returns its inner controller
		// unchanged when the spec arms no faults).
		s.kernelOK = drive == core.Controller(agent)
	}
	return s, nil
}

// Create builds a session from spec under a fresh id and registers it.
// Counter ids can collide with caller-chosen CreateWithID names (or with
// sessions restored from a checkpoint written under a higher counter),
// so the counter advances until it lands on a free id.
func (st *Store) Create(spec Spec) (*Session, error) {
	spec.normalize()
	for {
		id := fmt.Sprintf("s-%08x", st.nextID.Add(1))
		sh := st.shardFor(id)
		sh.mu.Lock()
		if _, taken := sh.m[id]; taken {
			sh.mu.Unlock()
			continue
		}
		s, err := st.lockedBuildSession(sh, id, spec)
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		sh.m[id] = s
		sh.mu.Unlock()
		return s, nil
	}
}

// maxSessionID bounds caller-chosen session ids; they travel in URL
// paths and checkpoint keys.
const maxSessionID = 96

// validSessionID vets a caller-chosen id: printable ASCII, no path
// separators or quotes (ids are spliced into URLs and hand-built JSON).
func validSessionID(id string) error {
	if id == "" || len(id) > maxSessionID {
		return fmt.Errorf("session id must be 1..%d bytes", maxSessionID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '/' || c == '"' || c == '\\' || c == '%' {
			return fmt.Errorf("session id %q: byte %d is not a plain URL-safe character", id, i)
		}
	}
	return nil
}

// CreateWithID builds a session from spec under a caller-chosen id.
// When the id is already registered with an identical spec the existing
// session is returned with created=false — the idempotent outcome a
// retried PUT needs; a differing spec is a typed CodeConflict error.
func (st *Store) CreateWithID(id string, spec Spec) (s *Session, created bool, err error) {
	if err := validSessionID(id); err != nil {
		return nil, false, err
	}
	spec.normalize()
	sh := st.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.m[id]; ok {
		if specEqual(prev.spec, spec) {
			return prev, false, nil
		}
		return nil, false, &ProtocolError{
			Code: CodeConflict,
			Msg:  fmt.Sprintf("session %s exists with a different spec", id),
		}
	}
	s, err = st.lockedBuildSession(sh, id, spec)
	if err != nil {
		return nil, false, err
	}
	sh.m[id] = s
	return s, true, nil
}

// specEqual compares two normalized specs field by field.
func specEqual(a, b Spec) bool {
	if a.Algo != b.Algo || a.Arms != b.Arms || a.Seed != b.Seed || a.Faults != b.Faults ||
		a.MaxContexts != b.MaxContexts {
		return false
	}
	if len(a.MetaPairs) != len(b.MetaPairs) {
		return false
	}
	for i := range a.MetaPairs {
		if a.MetaPairs[i] != b.MetaPairs[i] {
			return false
		}
	}
	return true
}

// Get returns the session with the given id.
func (st *Store) Get(id string) (*Session, bool) {
	sh := st.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	return s, ok
}

// Delete removes the session with the given id, reporting whether it
// existed. Removal is a three-beat sequence because a concurrent request
// may have resolved the session pointer before the map delete:
//
//  1. remove the id from the shard map (new lookups miss);
//  2. set the session's deleted flag under its own lock (in-flight
//     operations that already hold the pointer re-check the flag under
//     s.mu and answer not-found instead of touching the agent);
//  3. free the slab slot under the shard lock (safe now: any operation
//     acquiring s.mu after step 2 bails before dereferencing the agent,
//     and the slot may be handed to the shard's next session).
func (st *Store) Delete(id string) bool {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	delete(sh.m, id)
	sh.mu.Unlock()

	s.mu.Lock()
	s.deleted = true
	slab, slot := s.slab, s.slot
	s.mu.Unlock()

	if slab != nil {
		sh.mu.Lock()
		slab.Free(slot)
		sh.mu.Unlock()
	}
	return true
}

// Len returns the number of live sessions.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns every live session id, sorted, so checkpoint files and
// list responses are deterministic regardless of shard layout.
func (st *Store) IDs() []string {
	var ids []string
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}
