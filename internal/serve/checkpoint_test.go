package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"microbandit/internal/core"
)

// ckptReward is a deterministic per-(session, arm, step) reward so replay
// comparisons exercise real learning dynamics.
func ckptReward(sess int, arm int, step uint64) float64 {
	x := float64(sess+1)*0.13 + float64(arm)*0.31 + float64(step)*0.017
	return 0.5 + 0.5*math.Sin(x)
}

// ckptSpecs is the session mix used by the replay tests: every
// checkpointable controller shape, fault-free (fault streams are
// intentionally not persisted, so only fault-free sessions promise exact
// replay).
func ckptSpecs() []Spec {
	return []Spec{
		{Algo: "ducb", Arms: 5, Seed: 11},
		{Algo: "ucb", Arms: 3, Seed: 12},
		{Algo: "eps", Arms: 4, Seed: 13},
		{Algo: "single", Arms: 4, Seed: 14},
		{Algo: "periodic", Arms: 3, Seed: 15},
		{Algo: "static:1", Arms: 2, Seed: 16},
		{Arms: 3, Seed: 17, MetaPairs: [][2]float64{{0.5, 0.99}, {1.0, 0.999}, {2.0, 1.0}}},
	}
}

// driveSessions runs n full decisions on every session, returning the arm
// sequence per session id.
func driveSessions(t *testing.T, st *Store, ids []string, n int) map[string][]int {
	t.Helper()
	arms := make(map[string][]int, len(ids))
	for si, id := range ids {
		s, ok := st.Get(id)
		if !ok {
			t.Fatalf("session %s missing", id)
		}
		for i := 0; i < n; i++ {
			seq, arm, err := s.Step()
			if err != nil {
				t.Fatalf("session %s step: %v", id, err)
			}
			if _, err := s.Reward(seq, ckptReward(si, arm, seq)); err != nil {
				t.Fatalf("session %s reward: %v", id, err)
			}
			arms[id] = append(arms[id], arm)
		}
	}
	return arms
}

// TestCheckpointReplayAcrossRestart is the acceptance-criteria test: run
// a mixed session population, checkpoint mid-stream, keep driving the
// original, then restore the checkpoint into a fresh store and verify the
// restored sessions emit the identical arm sequences.
func TestCheckpointReplayAcrossRestart(t *testing.T) {
	st := NewStore(4)
	var ids []string
	for _, sp := range ckptSpecs() {
		s, err := st.Create(sp)
		if err != nil {
			t.Fatalf("Create(%+v): %v", sp, err)
		}
		ids = append(ids, s.ID())
	}
	driveSessions(t, st, ids, 37)

	// One session checkpointed with a step open (between Step and Reward).
	openSess, err := st.Create(Spec{Algo: "ducb", Arms: 4, Seed: 99})
	if err != nil {
		t.Fatalf("Create open session: %v", err)
	}
	openSeq, openArm, err := openSess.Step()
	if err != nil {
		t.Fatalf("open step: %v", err)
	}

	data, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Continue the original store past the checkpoint.
	want := driveSessions(t, st, ids, 120)

	// Restart: restore into a fresh store with a different shard count
	// (shard layout must not affect behavior).
	st2, err := RestoreCheckpoint(data, 2)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	if st2.Len() != len(ids)+1 {
		t.Fatalf("restored %d sessions, want %d", st2.Len(), len(ids)+1)
	}
	got := driveSessions(t, st2, ids, 120)
	for _, id := range ids {
		w, g := want[id], got[id]
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("session %s diverges at decision %d: original %d, restored %d", id, i, w[i], g[i])
			}
		}
	}

	// The open decision survived the restart: a second step conflicts,
	// the pending reward with the right seq lands.
	restoredOpen, ok := st2.Get(openSess.ID())
	if !ok {
		t.Fatalf("open session %s missing after restore", openSess.ID())
	}
	info, err := restoredOpen.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if !info.Open || info.Arm != openArm || info.Seq != openSeq {
		t.Fatalf("restored open session info = %+v, want open arm %d seq %d", info, openArm, openSeq)
	}
	if _, _, err := restoredOpen.Step(); !isProtocol(err, CodeStepOpen) {
		t.Fatalf("step on restored open session: %v, want %s", err, CodeStepOpen)
	}
	if _, err := restoredOpen.Reward(openSeq, 0.5); err != nil {
		t.Fatalf("reward on restored open session: %v", err)
	}

	// Restored rewards advance agents identically to the originals: close
	// the original open session the same way and compare the next arms.
	if _, err := openSess.Reward(openSeq, 0.5); err != nil {
		t.Fatalf("reward on original open session: %v", err)
	}
	for i := 0; i < 50; i++ {
		s1, a1, err1 := openSess.Step()
		s2, a2, err2 := restoredOpen.Step()
		if err1 != nil || err2 != nil || s1 != s2 || a1 != a2 {
			t.Fatalf("open-session continuation diverges at %d: (%d,%d,%v) vs (%d,%d,%v)", i, s1, a1, err1, s2, a2, err2)
		}
		r := ckptReward(0, a1, s1)
		if _, err := openSess.Reward(s1, r); err != nil {
			t.Fatalf("reward: %v", err)
		}
		if _, err := restoredOpen.Reward(s2, r); err != nil {
			t.Fatalf("reward: %v", err)
		}
	}
}

// TestCheckpointNextIDSurvives verifies that ids allocated after a
// restore don't collide with checkpointed sessions.
func TestCheckpointNextIDSurvives(t *testing.T) {
	st := NewStore(2)
	for i := 0; i < 3; i++ {
		if _, err := st.Create(Spec{Algo: "eps", Arms: 2}); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}
	data, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st2, err := RestoreCheckpoint(data, 2)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	s, err := st2.Create(Spec{Algo: "eps", Arms: 2})
	if err != nil {
		t.Fatalf("Create after restore: %v", err)
	}
	if s.ID() != "s-00000004" {
		t.Fatalf("post-restore id = %q, want s-00000004", s.ID())
	}
}

// TestCheckpointDeterministicBytes: a quiesced store checkpoints to
// identical bytes every time, and a restore checkpoints back to the same
// bytes.
func TestCheckpointDeterministicBytes(t *testing.T) {
	st := NewStore(4)
	var ids []string
	for _, sp := range ckptSpecs() {
		s, err := st.Create(sp)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		ids = append(ids, s.ID())
	}
	driveSessions(t, st, ids, 25)

	a, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	b, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("second Checkpoint: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("repeated checkpoints differ")
	}
	st2, err := RestoreCheckpoint(a, 8)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	c, err := st2.Checkpoint()
	if err != nil {
		t.Fatalf("restored Checkpoint: %v", err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("checkpoint of restored store differs from original")
	}
}

func TestWriteCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	st := NewStore(1)
	if _, err := st.Create(Spec{Algo: "ucb", Arms: 2}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := st.WriteCheckpoint(path); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	// Overwrite works and leaves no temp droppings.
	if err := st.WriteCheckpoint(path); err != nil {
		t.Fatalf("second WriteCheckpoint: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != "ckpt.json" {
		t.Fatalf("dir contents = %v, want only ckpt.json", entries)
	}
	if _, err := LoadCheckpoint(path, 0); err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
}

// TestRestoreCheckpointTypedErrors: hostile checkpoint bytes produce
// typed *CheckpointError values, never panics.
func TestRestoreCheckpointTypedErrors(t *testing.T) {
	st := NewStore(1)
	s, err := st.Create(Spec{Algo: "ducb", Arms: 3, Seed: 2})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	seq, _, _ := s.Step()
	s.Reward(seq, 1)
	good, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not json", []byte("definitely not json")},
		{"truncated", good[:len(good)/2]},
		{"wrong version", []byte(`{"v":999,"next_id":1,"sessions":[]}`)},
		{"missing id", []byte(`{"v":1,"next_id":1,"sessions":[{"spec":{"arms":2},"kind":"fixed"}]}`)},
		{"unknown kind", []byte(`{"v":1,"next_id":1,"sessions":[{"id":"s-1","spec":{"arms":2},"kind":"alien"}]}`)},
		{"bad spec", []byte(`{"v":1,"next_id":1,"sessions":[{"id":"s-1","spec":{"arms":0},"kind":"fixed"}]}`)},
		{"fixed arm out of range", []byte(`{"v":1,"next_id":1,"sessions":[{"id":"s-1","spec":{"arms":2,"algo":"static:0"},"kind":"fixed","fixed_arm":9}]}`)},
		{"agent payload garbage", []byte(`{"v":1,"next_id":1,"sessions":[{"id":"s-1","spec":{"arms":2},"kind":"agent","agent":{"v":1}}]}`)},
		{"open arm out of range", []byte(`{"v":1,"next_id":1,"sessions":[{"id":"s-1","spec":{"arms":2,"algo":"static:0"},"kind":"fixed","fixed_arm":0,"open":true,"arm":7}]}`)},
		{"duplicate id", dupSessionCheckpoint(t, good)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := RestoreCheckpoint(c.data, 1)
			var ce *CheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v (%T), want *CheckpointError", err, err)
			}
			if ce.Error() == "" {
				t.Fatal("empty error string")
			}
		})
	}
}

// dupSessionCheckpoint doubles the session list of a valid checkpoint so
// the same id appears twice.
func dupSessionCheckpoint(t *testing.T, good []byte) []byte {
	t.Helper()
	var file checkpointFile
	if err := json.Unmarshal(good, &file); err != nil {
		t.Fatalf("unmarshal good checkpoint: %v", err)
	}
	file.Sessions = append(file.Sessions, file.Sessions...)
	for gi := range file.Slabs {
		g := &file.Slabs[gi]
		g.IDs = append(g.IDs, g.IDs...)
		g.Specs = append(g.Specs, g.Specs...)
		g.Seqs = append(g.Seqs, g.Seqs...)
		g.Opens = append(g.Opens, g.Opens...)
		g.OpenArms = append(g.OpenArms, g.OpenArms...)
		g.R = append(g.R, g.R...)
		g.N = append(g.N, g.N...)
		g.NTotals = append(g.NTotals, g.NTotals...)
		g.Steps = append(g.Steps, g.Steps...)
		g.CurrentArms = append(g.CurrentArms, g.CurrentArms...)
		g.InSteps = append(g.InSteps, g.InSteps...)
		g.ForcedLens = append(g.ForcedLens, g.ForcedLens...)
		g.RAvgs = append(g.RAvgs, g.RAvgs...)
		g.Normalizeds = append(g.Normalizeds, g.Normalizeds...)
		g.Restarts = append(g.Restarts, g.Restarts...)
		g.RNGs = append(g.RNGs, g.RNGs...)
	}
	data, err := json.Marshal(file)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// TestCheckpointSkipsNothing: every session created is present in the
// checkpoint (mixed kinds), and fault-armed sessions round-trip their
// spec so the wrapper is rebuilt.
func TestCheckpointFaultSpecRoundTrips(t *testing.T) {
	st := NewStore(1)
	s, err := st.Create(Spec{Algo: "ducb", Arms: 3, Seed: 4, Faults: "noise:0.3"})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 10; i++ {
		seq, _, err := s.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if _, err := s.Reward(seq, 0.5); err != nil {
			t.Fatalf("reward: %v", err)
		}
	}
	data, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st2, err := RestoreCheckpoint(data, 1)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	s2, ok := st2.Get(s.ID())
	if !ok {
		t.Fatal("session missing after restore")
	}
	if s2.Spec().Faults != "noise:0.3" {
		t.Fatalf("fault spec = %q after restore", s2.Spec().Faults)
	}
	if _, ok := s2.drive.(*core.Agent); ok {
		t.Fatal("restored drive is the bare agent; fault wrapper not rebuilt")
	}
	// The restored session still serves.
	seq, _, err := s2.Step()
	if err != nil {
		t.Fatalf("restored step: %v", err)
	}
	if _, err := s2.Reward(seq, 0.5); err != nil {
		t.Fatalf("restored reward: %v", err)
	}
}

// checkpointV1 re-encodes a store in the version-1 per-session-record
// format (every agent as its own JSON snapshot), as PR 4 wrote it.
func checkpointV1(t *testing.T, st *Store) []byte {
	t.Helper()
	file := checkpointFile{V: checkpointVersionV1, NextID: st.nextID.Load()}
	for _, id := range st.IDs() {
		s, ok := st.Get(id)
		if !ok {
			continue
		}
		ck, snap, err := checkpointSession(s)
		if err != nil {
			t.Fatalf("checkpointSession(%s): %v", id, err)
		}
		if snap != nil {
			data, err := json.Marshal(snap)
			if err != nil {
				t.Fatalf("marshal snapshot %s: %v", id, err)
			}
			ck.Agent = data
		}
		file.Sessions = append(file.Sessions, ck)
	}
	data, err := json.Marshal(file)
	if err != nil {
		t.Fatalf("marshal v1 file: %v", err)
	}
	return data
}

// TestCheckpointV1StillRestores: a version-1 file and the version-2 slab
// encoding of the same store restore into sessions with identical future
// decision streams. This is the codec round-trip equivalence the slab
// format promises against the PR 4 format.
func TestCheckpointV1StillRestores(t *testing.T) {
	st := NewStore(2)
	var ids []string
	for _, sp := range ckptSpecs() {
		s, err := st.Create(sp)
		if err != nil {
			t.Fatalf("Create(%+v): %v", sp, err)
		}
		ids = append(ids, s.ID())
	}
	driveSessions(t, st, ids, 25)

	v1 := checkpointV1(t, st)
	v2, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st1, err := RestoreCheckpoint(v1, 3)
	if err != nil {
		t.Fatalf("RestoreCheckpoint(v1): %v", err)
	}
	st2, err := RestoreCheckpoint(v2, 3)
	if err != nil {
		t.Fatalf("RestoreCheckpoint(v2): %v", err)
	}
	got1 := driveSessions(t, st1, ids, 80)
	got2 := driveSessions(t, st2, ids, 80)
	for _, id := range ids {
		a, b := got1[id], got2[id]
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("session %s: v1 restore and v2 restore diverge at decision %d (%d vs %d)", id, i, a[i], b[i])
			}
		}
	}
}

// TestCheckpointV2SlabLayout: eligible sessions (stateless-policy agents,
// registry hyperparameters) land in column slab groups — including
// fault-armed ones, whose wrapper is rebuilt from the spec — while mode
// -stateful agents, fixed arms, and meta sessions keep per-session
// records. Restored slab sessions come back batch-kernel eligible.
func TestCheckpointV2SlabLayout(t *testing.T) {
	st := NewStore(2)
	var ids []string
	for _, sp := range append(ckptSpecs(), Spec{Algo: "ducb", Arms: 5, Seed: 77, Faults: "noise:0.2"}) {
		s, err := st.Create(sp)
		if err != nil {
			t.Fatalf("Create(%+v): %v", sp, err)
		}
		ids = append(ids, s.ID())
	}
	driveSessions(t, st, ids, 12)

	data, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	var file checkpointFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	if file.V != CheckpointVersion {
		t.Fatalf("file version %d, want %d", file.V, CheckpointVersion)
	}
	// ducb/5 (two sessions: plain + faulted), eps/4, ucb/3.
	if len(file.Slabs) != 3 {
		t.Fatalf("got %d slab groups, want 3", len(file.Slabs))
	}
	entries := 0
	for gi := range file.Slabs {
		g := &file.Slabs[gi]
		if err := g.validate(); err != nil {
			t.Fatalf("written group fails validate: %v", err)
		}
		if gi > 0 {
			prev := &file.Slabs[gi-1]
			if slabGroupKey(prev.Algo, prev.Arms) >= slabGroupKey(g.Algo, g.Arms) {
				t.Fatalf("slab groups not sorted: %s/%d before %s/%d", prev.Algo, prev.Arms, g.Algo, g.Arms)
			}
		}
		for i, sp := range g.Specs {
			if sp.Algo != g.Algo || sp.Arms != g.Arms {
				t.Fatalf("group %s/%d entry %d has spec %s/%d", g.Algo, g.Arms, i, sp.Algo, sp.Arms)
			}
		}
		entries += len(g.IDs)
	}
	if entries != 4 {
		t.Fatalf("%d slab entries, want 4 (ducb x2, ucb, eps)", entries)
	}
	// single, periodic, static:1, meta stay as per-session records.
	if len(file.Sessions) != 4 {
		t.Fatalf("%d per-session records, want 4", len(file.Sessions))
	}
	for _, ck := range file.Sessions {
		if slabAlgos[ck.Spec.Algo] && len(ck.Spec.MetaPairs) == 0 {
			t.Fatalf("slab-eligible session %s written as a per-session record", ck.ID)
		}
	}

	st2, err := RestoreCheckpoint(data, 1)
	if err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	kernelEligible := 0
	for _, id := range st2.IDs() {
		s, ok := st2.Get(id)
		if !ok {
			t.Fatalf("restored session %s missing", id)
		}
		if s.spec.Faults != "" {
			if s.kernelOK {
				t.Fatalf("faulted session %s restored kernel-eligible", id)
			}
			continue
		}
		if s.slab != nil {
			if !s.kernelOK {
				t.Fatalf("fault-free slab session %s restored with kernelOK=false", id)
			}
			kernelEligible++
		}
	}
	if kernelEligible < 3 {
		t.Fatalf("only %d restored sessions are kernel-eligible, want >= 3", kernelEligible)
	}
}

// TestRestoreSlabHostile: structurally broken slab groups are rejected
// with typed *CheckpointError values, never panics or silent corruption.
func TestRestoreSlabHostile(t *testing.T) {
	st := NewStore(1)
	s, err := st.Create(Spec{Algo: "eps", Arms: 3, Seed: 9})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	id := s.ID()
	driveSessions(t, st, []string{id}, 6)
	base, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(f *checkpointFile)
	}{
		{"empty id", func(f *checkpointFile) { f.Slabs[0].IDs[0] = "" }},
		{"non-slab algo", func(f *checkpointFile) {
			f.Slabs[0].Algo = "periodic"
			f.Slabs[0].Specs[0].Algo = "periodic"
		}},
		{"spec algo mismatch", func(f *checkpointFile) { f.Slabs[0].Specs[0].Algo = "ucb" }},
		{"spec arms mismatch", func(f *checkpointFile) { f.Slabs[0].Specs[0].Arms++ }},
		{"column length mismatch", func(f *checkpointFile) { f.Slabs[0].Seqs = nil }},
		{"table length mismatch", func(f *checkpointFile) { f.Slabs[0].R = f.Slabs[0].R[:1] }},
		{"forced len out of range", func(f *checkpointFile) { f.Slabs[0].ForcedLens[0] = f.Slabs[0].Arms + 1 }},
		{"negative forced len", func(f *checkpointFile) { f.Slabs[0].ForcedLens[0] = -1 }},
		{"open arm out of range", func(f *checkpointFile) {
			f.Slabs[0].Opens[0] = true
			f.Slabs[0].OpenArms[0] = f.Slabs[0].Arms + 2
		}},
		{"arms zero", func(f *checkpointFile) { f.Slabs[0].Arms = 0 }},
		{"id collides with session record", func(f *checkpointFile) {
			f.Sessions = append(f.Sessions, sessionCheckpoint{
				ID: f.Slabs[0].IDs[0], Spec: Spec{Algo: "static:0", Arms: 2},
				Kind: ckptFixed, FixedArm: 0,
			})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var file checkpointFile
			if err := json.Unmarshal(base, &file); err != nil {
				t.Fatalf("unmarshal base: %v", err)
			}
			c.mutate(&file)
			data, err := json.Marshal(file)
			if err != nil {
				t.Fatalf("marshal mutated: %v", err)
			}
			_, err = RestoreCheckpoint(data, 1)
			var ce *CheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v (%T), want *CheckpointError", err, err)
			}
		})
	}
}

// TestRestoreCorruptedCheckpointFiles feeds damaged checkpoint bytes —
// truncations and single-bit flips at byte strides, over both the v1
// per-session format and the v2 slab format — through RestoreCheckpoint.
// The contract under fire: a restore either succeeds or returns a typed
// *CheckpointError (naming the byte offset for decode failures), and it
// never panics. This is the on-disk analogue of a node crash mid-write
// or a corrupted replica shipment.
func TestRestoreCorruptedCheckpointFiles(t *testing.T) {
	st := NewStore(2)
	var ids []string
	for _, sp := range ckptSpecs() {
		s, err := st.Create(sp)
		if err != nil {
			t.Fatalf("Create(%+v): %v", sp, err)
		}
		ids = append(ids, s.ID())
	}
	driveSessions(t, st, ids, 12)

	v1 := checkpointV1(t, st)
	v2, err := st.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	for _, f := range []struct {
		name string
		data []byte
	}{{"v1", v1}, {"v2", v2}} {
		f := f
		t.Run(f.name+"/truncated", func(t *testing.T) {
			// Every proper prefix of the JSON object is malformed: the
			// restore must fail with a typed error that names an offset
			// inside (or at the end of) what it was given.
			stride := len(f.data)/97 + 1
			for cut := 0; cut < len(f.data); cut += stride {
				_, err := RestoreCheckpoint(f.data[:cut], 1)
				var ce *CheckpointError
				if !errors.As(err, &ce) {
					t.Fatalf("cut at %d: err = %v (%T), want *CheckpointError", cut, err, err)
				}
				if cut > 0 && ce.Reason == "decode" && (ce.Offset <= 0 || ce.Offset > int64(cut)+1) {
					t.Fatalf("cut at %d: decode error names offset %d, outside the %d bytes given", cut, ce.Offset, cut)
				}
			}
		})
		t.Run(f.name+"/bit-flipped", func(t *testing.T) {
			// A flipped bit may survive (a digit becomes another digit) or
			// fail; what it must never do is panic or surface an untyped
			// error.
			stride := len(f.data)/211 + 1
			buf := make([]byte, len(f.data))
			for pos := 0; pos < len(f.data); pos += stride {
				for _, bit := range []uint{0, 3, 6} {
					copy(buf, f.data)
					buf[pos] ^= 1 << bit
					rst, err := RestoreCheckpoint(buf, 1)
					if err != nil {
						var ce *CheckpointError
						if !errors.As(err, &ce) {
							t.Fatalf("flip %d/bit %d: err = %v (%T), want *CheckpointError", pos, bit, err, err)
						}
						continue
					}
					// Accepted corruption must still be a coherent store.
					if rst == nil {
						t.Fatalf("flip %d/bit %d: nil store with nil error", pos, bit)
					}
				}
			}
		})
	}
}
