package smtwork

import "fmt"

// Profiles returns the 22 SPEC17-styled thread profiles used to build the
// 2-thread mixes (§6.2). The knob values encode each application's
// documented pipeline character: lbm's store-queue appetite, mcf's
// pointer-chasing ROB clog, the game engines' cache-resident branchy
// integer code, and the FP suite's long-latency, high-ILP loops.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "gcc", LoadFrac: 0.24, StoreFrac: 0.12, BranchFrac: 0.20,
			MispredictProb: 0.06, L1HitProb: 0.92, L2HitProb: 0.06,
			DepProb: 0.5, DepDistMean: 5,
		},
		{
			Name: "mcf", LoadFrac: 0.34, StoreFrac: 0.08, BranchFrac: 0.16,
			MispredictProb: 0.08, L1HitProb: 0.55, L2HitProb: 0.15,
			LoadChainProb: 0.5, DepProb: 0.5, DepDistMean: 4,
		},
		{
			Name: "lbm", LoadFrac: 0.26, StoreFrac: 0.28, BranchFrac: 0.02, FPFrac: 0.30,
			MispredictProb: 0.01, L1HitProb: 0.70, L2HitProb: 0.10, MemLat: 380,
			StoreDrainDRAMProb: 0.85, DepProb: 0.3, DepDistMean: 16, FPLat: 5,
		},
		{
			Name: "cactuBSSN", LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.03, FPFrac: 0.40,
			MispredictProb: 0.01, L1HitProb: 0.80, L2HitProb: 0.14,
			DepProb: 0.45, DepDistMean: 10, FPLat: 8,
		},
		{
			Name: "xalancbmk", LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.22,
			MispredictProb: 0.05, L1HitProb: 0.85, L2HitProb: 0.10,
			LoadChainProb: 0.3, DepProb: 0.55, DepDistMean: 4,
		},
		{
			Name: "deepsjeng", LoadFrac: 0.22, StoreFrac: 0.10, BranchFrac: 0.18,
			MispredictProb: 0.09, L1HitProb: 0.97, L2HitProb: 0.02,
			DepProb: 0.5, DepDistMean: 6,
		},
		{
			Name: "leela", LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.16,
			MispredictProb: 0.11, L1HitProb: 0.97, L2HitProb: 0.02,
			DepProb: 0.55, DepDistMean: 5,
		},
		{
			Name: "exchange2", LoadFrac: 0.16, StoreFrac: 0.10, BranchFrac: 0.22,
			MispredictProb: 0.04, L1HitProb: 0.995, L2HitProb: 0.005,
			DepProb: 0.45, DepDistMean: 8,
		},
		{
			Name: "wrf", LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.06, FPFrac: 0.36,
			MispredictProb: 0.02, L1HitProb: 0.85, L2HitProb: 0.10,
			DepProb: 0.4, DepDistMean: 12, FPLat: 5,
		},
		{
			Name: "fotonik3d", LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.03, FPFrac: 0.34,
			MispredictProb: 0.01, L1HitProb: 0.72, L2HitProb: 0.12,
			StoreDrainDRAMProb: 0.35, DepProb: 0.3, DepDistMean: 16, FPLat: 5,
		},
		{
			Name: "roms", LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.05, FPFrac: 0.32,
			MispredictProb: 0.02, L1HitProb: 0.78, L2HitProb: 0.12,
			StoreDrainDRAMProb: 0.3, DepProb: 0.35, DepDistMean: 14, FPLat: 5,
		},
		{
			Name: "xz", LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.16,
			MispredictProb: 0.07, L1HitProb: 0.82, L2HitProb: 0.10,
			DepProb: 0.5, DepDistMean: 5,
		},
		{
			Name: "perlbench", LoadFrac: 0.26, StoreFrac: 0.14, BranchFrac: 0.20,
			MispredictProb: 0.04, L1HitProb: 0.95, L2HitProb: 0.04,
			DepProb: 0.5, DepDistMean: 6,
		},
		{
			Name: "x264", LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.08,
			MispredictProb: 0.03, L1HitProb: 0.90, L2HitProb: 0.07,
			DepProb: 0.35, DepDistMean: 12,
		},
		{
			Name: "omnetpp", LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.18,
			MispredictProb: 0.05, L1HitProb: 0.75, L2HitProb: 0.12,
			LoadChainProb: 0.35, DepProb: 0.5, DepDistMean: 5,
		},
		{
			Name: "bwaves", LoadFrac: 0.32, StoreFrac: 0.08, BranchFrac: 0.04, FPFrac: 0.38,
			MispredictProb: 0.01, L1HitProb: 0.80, L2HitProb: 0.12,
			StoreDrainDRAMProb: 0.25, DepProb: 0.3, DepDistMean: 18, FPLat: 6,
		},
		{
			Name: "pop2", LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.08, FPFrac: 0.30,
			MispredictProb: 0.02, L1HitProb: 0.84, L2HitProb: 0.10,
			DepProb: 0.4, DepDistMean: 10, FPLat: 5,
		},
		{
			Name: "cam4", LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.10, FPFrac: 0.28,
			MispredictProb: 0.03, L1HitProb: 0.86, L2HitProb: 0.08,
			DepProb: 0.45, DepDistMean: 9, FPLat: 5,
		},
		{
			Name: "imagick", LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.08, FPFrac: 0.34,
			MispredictProb: 0.02, L1HitProb: 0.97, L2HitProb: 0.02,
			DepProb: 0.4, DepDistMean: 12, FPLat: 5,
		},
		{
			Name: "nab", LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.08, FPFrac: 0.34,
			MispredictProb: 0.02, L1HitProb: 0.90, L2HitProb: 0.06,
			DepProb: 0.45, DepDistMean: 8, FPLat: 6,
		},
		{
			Name: "blender", LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.12, FPFrac: 0.22,
			MispredictProb: 0.04, L1HitProb: 0.88, L2HitProb: 0.08,
			DepProb: 0.45, DepDistMean: 8, FPLat: 5,
		},
		{
			Name: "parest", LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.08, FPFrac: 0.30,
			MispredictProb: 0.02, L1HitProb: 0.88, L2HitProb: 0.08,
			DepProb: 0.45, DepDistMean: 9, FPLat: 6,
		},
	}
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("smtwork: unknown profile %q", name)
}

// Mix is a 2-thread workload.
type Mix struct {
	A, B Profile
}

// Name returns "a-b".
func (m Mix) Name() string { return m.A.Name + "-" + m.B.Name }

// Mixes returns all unordered 2-thread combinations of distinct profiles
// (231 mixes from 22 apps; the paper uses 226 — the near-complete pairing
// is the same experiment at our catalog size).
func Mixes() []Mix {
	ps := Profiles()
	var out []Mix
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			out = append(out, Mix{A: ps[i], B: ps[j]})
		}
	}
	return out
}

// TuneMixes returns the tune-set mixes: all pairs from the first 10
// profiles (45 mixes; the paper tunes on 43 mixes from 10 applications).
func TuneMixes() []Mix {
	ps := Profiles()[:10]
	var out []Mix
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			out = append(out, Mix{A: ps[i], B: ps[j]})
		}
	}
	return out
}
