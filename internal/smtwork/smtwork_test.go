package smtwork

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUopKindString(t *testing.T) {
	want := map[UopKind]string{
		UopALU: "alu", UopFP: "fp", UopLoad: "load",
		UopStore: "store", UopBranch: "branch", UopKind(9): "uop(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestGenDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		a, b := NewGen(p, 42), NewGen(p, 42)
		for i := 0; i < 1000; i++ {
			var ua, ub Uop
			a.Next(&ua)
			b.Next(&ub)
			if ua != ub {
				t.Fatalf("%s: uop %d differs", p.Name, i)
			}
		}
	}
}

func TestGenMixMatchesProfile(t *testing.T) {
	for _, p := range Profiles() {
		g := NewGen(p, 7)
		const n = 50000
		counts := map[UopKind]int{}
		var chained int
		for i := 0; i < n; i++ {
			var u Uop
			g.Next(&u)
			counts[u.Kind]++
			if u.Kind == UopLoad && u.DepDist > 0 {
				chained++
			}
			if u.Lat < 1 {
				t.Fatalf("%s: non-positive latency", p.Name)
			}
			if u.Kind != UopStore && u.DrainLat != 0 {
				t.Fatalf("%s: non-store with drain latency", p.Name)
			}
			if u.Mispredict && u.Kind != UopBranch {
				t.Fatalf("%s: non-branch mispredict", p.Name)
			}
		}
		check := func(kind UopKind, want float64) {
			got := float64(counts[kind]) / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("%s: %v fraction = %.3f, want %.3f", p.Name, kind, got, want)
			}
		}
		check(UopLoad, p.LoadFrac)
		check(UopStore, p.StoreFrac)
		check(UopBranch, p.BranchFrac)
		check(UopFP, p.FPFrac)
	}
}

func TestMemoryCharacterDiffers(t *testing.T) {
	avgLoadLat := func(name string) float64 {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGen(p, 3)
		var sum, n float64
		for i := 0; i < 50000; i++ {
			var u Uop
			g.Next(&u)
			if u.Kind == UopLoad {
				sum += float64(u.Lat)
				n++
			}
		}
		return sum / n
	}
	cacheResident := avgLoadLat("exchange2")
	memBound := avgLoadLat("mcf")
	if cacheResident >= 10 {
		t.Errorf("exchange2 avg load latency %.1f, want cache-resident", cacheResident)
	}
	if memBound < 5*cacheResident {
		t.Errorf("mcf (%.1f) not clearly slower than exchange2 (%.1f)", memBound, cacheResident)
	}
}

func TestLbmStoreDrainPressure(t *testing.T) {
	p, _ := ByName("lbm")
	g := NewGen(p, 5)
	var slowDrains, stores int
	for i := 0; i < 50000; i++ {
		var u Uop
		g.Next(&u)
		if u.Kind == UopStore {
			stores++
			if u.DrainLat > 50 {
				slowDrains++
			}
		}
	}
	frac := float64(slowDrains) / float64(stores)
	if math.Abs(frac-p.StoreDrainDRAMProb) > 0.05 {
		t.Errorf("lbm slow-drain fraction = %.2f, want ~%.2f", frac, p.StoreDrainDRAMProb)
	}
}

func TestCatalogStructure(t *testing.T) {
	ps := Profiles()
	if len(ps) != 22 {
		t.Fatalf("catalog has %d profiles, want 22", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		total := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.FPFrac
		if total >= 1 {
			t.Errorf("%s: instruction fractions sum to %.2f", p.Name, total)
		}
	}
	if _, err := ByName("lbm"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown profile")
	}
}

func TestMixes(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 231 { // C(22,2)
		t.Fatalf("got %d mixes, want 231", len(mixes))
	}
	seen := map[string]bool{}
	for _, m := range mixes {
		if seen[m.Name()] {
			t.Errorf("duplicate mix %s", m.Name())
		}
		seen[m.Name()] = true
	}
	tune := TuneMixes()
	if len(tune) != 45 { // C(10,2)
		t.Fatalf("got %d tune mixes, want 45", len(tune))
	}
}

// Property: DepDist never points beyond the uop's own position history cap
// and chains only occur on loads when configured.
func TestQuickUopInvariants(t *testing.T) {
	f := func(seed uint64, profIdx uint8) bool {
		ps := Profiles()
		p := ps[int(profIdx)%len(ps)]
		g := NewGen(p, seed)
		for i := 0; i < 300; i++ {
			var u Uop
			g.Next(&u)
			if u.DepDist < 0 || u.DepDist > 200 {
				return false
			}
			if u.DrainLat < 0 || u.Lat < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
