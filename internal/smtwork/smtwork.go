// Package smtwork provides the synthetic thread workloads for the SMT
// instruction-fetch experiments — the substitute for the paper's SPEC17
// SimPoint checkpoints (§6.2).
//
// Each named profile is a deterministic micro-op generator characterizing
// one application's pipeline appetite: instruction mix, memory-level
// behaviour (L1/L2/DRAM hit distribution), dependence structure (ILP), the
// probability that loads chain (pointer chasing), store drain behaviour
// (store-queue pressure — the lbm property discussed in §3.3), and branch
// misprediction rate. Those are exactly the axes along which the fetch
// Priority & Gating policies differentiate, so 2-thread mixes of these
// profiles reproduce the policy win/loss structure of Fig. 5 and Fig. 13.
package smtwork

import (
	"fmt"

	"microbandit/internal/xrand"
)

// UopKind classifies a micro-op.
type UopKind uint8

// Micro-op kinds.
const (
	UopALU UopKind = iota
	UopFP
	UopLoad
	UopStore
	UopBranch
)

// String implements fmt.Stringer.
func (k UopKind) String() string {
	switch k {
	case UopALU:
		return "alu"
	case UopFP:
		return "fp"
	case UopLoad:
		return "load"
	case UopStore:
		return "store"
	case UopBranch:
		return "branch"
	default:
		return fmt.Sprintf("uop(%d)", uint8(k))
	}
}

// Uop is one dynamic micro-op presented to the SMT pipeline.
type Uop struct {
	// Kind classifies the op.
	Kind UopKind
	// Lat is the execution latency once issued (for loads, the memory
	// latency drawn from the profile's hit distribution).
	Lat int64
	// DrainLat is, for stores, how long the store-queue entry lingers
	// after execution until the write drains (SQ pressure knob).
	DrainLat int64
	// DepDist is the program-order distance to the producer this op
	// waits for (0 = independent).
	DepDist int
	// Mispredict marks mispredicted branches (fetch redirect).
	Mispredict bool
}

// UsesIntReg reports whether the op allocates an integer rename register.
func (u *Uop) UsesIntReg() bool {
	return u.Kind == UopALU || u.Kind == UopLoad
}

// UsesFPReg reports whether the op allocates an FP rename register.
func (u *Uop) UsesFPReg() bool { return u.Kind == UopFP }

// Profile characterizes one synthetic application.
type Profile struct {
	// Name is the application name (styled after SPEC17).
	Name string

	// Instruction mix (fractions of all uops; remainder is ALU).
	LoadFrac, StoreFrac, BranchFrac, FPFrac float64

	// MispredictProb is P(mispredict | branch).
	MispredictProb float64

	// Memory behaviour: probability a load hits L1 or L2; the remainder
	// goes to DRAM with latency MemLat (±25% jitter).
	L1HitProb, L2HitProb float64
	MemLat               int64

	// StoreDrainDRAMProb is the probability a store's drain goes to
	// DRAM, holding its SQ entry for MemLat cycles (lbm-style SQ
	// exhaustion).
	StoreDrainDRAMProb float64

	// DepProb is the probability a uop depends on a recent producer;
	// DepDistMean sets the mean distance (small = serial, low ILP).
	DepProb     float64
	DepDistMean int

	// LoadChainProb is the probability a load depends on the previous
	// load (pointer chasing: serializes memory accesses).
	LoadChainProb float64

	// FPLat is the FP execution latency.
	FPLat int64
}

// Gen deterministically generates uops from a profile.
type Gen struct {
	p         Profile
	rng       *xrand.Rand
	sinceLoad int // uops since the previous load, for load chains
}

// NewGen builds a generator for profile p with the given seed.
func NewGen(p Profile, seed uint64) *Gen {
	if p.FPLat == 0 {
		p.FPLat = 4
	}
	if p.MemLat == 0 {
		p.MemLat = 250
	}
	if p.DepDistMean < 1 {
		p.DepDistMean = 8
	}
	return &Gen{p: p, rng: xrand.New(seed)}
}

// Name returns the profile name.
func (g *Gen) Name() string { return g.p.Name }

// Profile returns the generator's profile.
func (g *Gen) Profile() Profile { return g.p }

// Next fills in the next micro-op.
func (g *Gen) Next(u *Uop) {
	*u = Uop{Lat: 1}
	x := g.rng.Float64()
	p := g.p
	switch {
	case x < p.LoadFrac:
		u.Kind = UopLoad
		u.Lat = g.memLatency()
		if g.rng.Bool(p.LoadChainProb) && g.sinceLoad > 0 {
			u.DepDist = g.sinceLoad // chain to the previous load
		}
		g.sinceLoad = 0
	case x < p.LoadFrac+p.StoreFrac:
		u.Kind = UopStore
		u.Lat = 1
		if g.rng.Bool(p.StoreDrainDRAMProb) {
			u.DrainLat = g.jitter(p.MemLat)
		} else {
			u.DrainLat = 8
		}
		g.sinceLoad++
	case x < p.LoadFrac+p.StoreFrac+p.BranchFrac:
		u.Kind = UopBranch
		u.Mispredict = g.rng.Bool(p.MispredictProb)
		g.sinceLoad++
	case x < p.LoadFrac+p.StoreFrac+p.BranchFrac+p.FPFrac:
		u.Kind = UopFP
		u.Lat = p.FPLat
		g.sinceLoad++
	default:
		u.Kind = UopALU
		g.sinceLoad++
	}
	// General dependence structure (skip if already chained).
	if u.DepDist == 0 && g.rng.Bool(p.DepProb) {
		u.DepDist = 1 + g.rng.Intn(2*p.DepDistMean)
	}
}

// memLatency draws a load latency from the hit distribution.
func (g *Gen) memLatency() int64 {
	x := g.rng.Float64()
	switch {
	case x < g.p.L1HitProb:
		return 4
	case x < g.p.L1HitProb+g.p.L2HitProb:
		return 16
	default:
		return g.jitter(g.p.MemLat)
	}
}

// jitter returns lat ±25%.
func (g *Gen) jitter(lat int64) int64 {
	span := lat / 2
	if span <= 0 {
		return lat
	}
	return lat - span/2 + int64(g.rng.Intn(int(span)))
}
