package microbandit_test

import (
	"testing"

	"microbandit"
	"microbandit/internal/xrand"
)

// TestFacadeQuickstart exercises the public API exactly as README's
// quickstart does: a DUCB agent on a noisy stationary environment.
func TestFacadeQuickstart(t *testing.T) {
	agent := microbandit.MustNew(microbandit.Config{
		Arms:      4,
		Policy:    microbandit.NewDUCB(0.05, 0.99),
		Normalize: true,
		Seed:      1,
	})
	env := xrand.New(2)
	means := []float64{0.2, 0.7, 0.4, 0.1}
	picks := make([]int, 4)
	for step := 0; step < 1500; step++ {
		arm := agent.Step()
		picks[arm]++
		agent.Reward(means[arm] + 0.05*env.NormFloat64())
	}
	if best := agent.BestArm(); best != 1 {
		t.Errorf("BestArm = %d, want 1", best)
	}
	if picks[1] < 1000 {
		t.Errorf("best arm picked only %d/1500 times", picks[1])
	}
}

func TestPaperAgentsMatchTable6(t *testing.T) {
	pf := microbandit.NewPrefetchAgent(1)
	if pf.Arms() != 11 {
		t.Errorf("prefetch agent arms = %d, want 11", pf.Arms())
	}
	smt := microbandit.NewSMTAgent(1)
	if smt.Arms() != 6 {
		t.Errorf("SMT agent arms = %d, want 6", smt.Arms())
	}
	// Both start in the initial round-robin phase of Algorithm 1.
	if !pf.InInitialRR() || !smt.InInitialRR() {
		t.Error("fresh agents must be in the initial RR phase")
	}
}

func TestFacadeConstants(t *testing.T) {
	if microbandit.PrefetchGamma != 0.999 || microbandit.PrefetchC != 0.04 {
		t.Error("prefetch hyperparameters do not match Table 6")
	}
	if microbandit.SMTGamma != 0.975 || microbandit.SMTC != 0.01 {
		t.Error("SMT hyperparameters do not match Table 6")
	}
}

func TestFacadeControllers(t *testing.T) {
	var c microbandit.Controller = microbandit.FixedArm(3)
	if c.Step() != 3 {
		t.Error("FixedArm broken through the facade")
	}
	var _ microbandit.Policy = microbandit.NewSingle()
	var _ microbandit.Policy = microbandit.NewPeriodic(4, 4)
	var _ microbandit.Policy = microbandit.NewStatic(0)
	var _ microbandit.Policy = microbandit.NewEpsilonGreedy(0.1)
	var _ microbandit.Policy = microbandit.NewUCB(0.1)
}

// newBenchAgent builds the 11-arm paper-default agent used by
// BenchmarkAgentStep.
func newBenchAgent() *microbandit.Agent {
	return microbandit.NewPrefetchAgent(1)
}
