// Package microbandit is a Go reproduction of "Micro-Armed Bandit:
// Lightweight & Reusable Reinforcement Learning for Microarchitecture
// Decision-Making" (Gerogiannis & Torrellas, MICRO 2023).
//
// The package is the public facade over the reusable agent: the
// Multi-Armed Bandit algorithms of the paper (ε-Greedy, UCB, and the
// Discounted UCB the hardware agent implements), the Algorithm 1 template
// with its initial round-robin phase, and the two microarchitecture
// modifications of §4.3 (reward normalization and probabilistic
// round-robin restarts).
//
// A downstream user drives the agent with the bandit-step protocol:
//
//	agent := microbandit.MustNew(microbandit.Config{
//		Arms:      11,
//		Policy:    microbandit.NewDUCB(0.04, 0.999),
//		Normalize: true,
//		Seed:      1,
//	})
//	for {
//		arm := agent.Step()   // apply this configuration ...
//		reward := runOneBanditStep(arm)
//		agent.Reward(reward)  // ... and report what it earned
//	}
//
// The evaluation substrates that reproduce the paper's experiments — the
// trace-driven core and cache hierarchy, the prefetchers, the SMT
// pipeline, and the experiment harness — live under internal/ and are
// exercised by the cmd/ tools, the examples/ programs, and the root
// benchmark suite (one benchmark per paper table and figure).
package microbandit

import "microbandit/internal/core"

// Re-exported agent API. These are aliases, not wrappers: the facade and
// internal/core are interchangeable within this module.
type (
	// Agent is the Micro-Armed Bandit agent (Algorithm 1 around a Policy).
	Agent = core.Agent
	// Config configures an Agent.
	Config = core.Config
	// Policy is one MAB algorithm or exploration heuristic.
	Policy = core.Policy
	// Tables is the agent's learned state (rTable, nTable, nTotal).
	Tables = core.Tables
	// Controller is the minimal arm-selection protocol (Agent or FixedArm).
	Controller = core.Controller
	// FixedArm is a degenerate Controller that always picks one arm.
	FixedArm = core.FixedArm
	// EpsilonGreedy is the ε-Greedy algorithm (Table 3a).
	EpsilonGreedy = core.EpsilonGreedy
	// UCB is the Upper Confidence Bound algorithm (Table 3b).
	UCB = core.UCB
	// DUCB is the Discounted UCB algorithm (Table 3c) — the paper's choice.
	DUCB = core.DUCB
	// Static always selects a fixed arm (the best-static oracle's block).
	Static = core.Static
	// Single locks the best round-robin arm forever (§7.1 heuristic).
	Single = core.Single
	// Periodic alternates sweeps and exploitation (§7.1 heuristic).
	Periodic = core.Periodic
	// MetaAgent is the §9 hierarchical extension: a high-level bandit
	// selecting among low-level bandits with different hyperparameters.
	MetaAgent = core.MetaAgent
	// Coordinator serializes §4.3 restarts across sibling agents (the
	// multi-bandit exploration orchestration of §8).
	Coordinator = core.Coordinator
	// Thompson is Thompson sampling (the paper's reference [73]),
	// provided as a library extension beyond the evaluated algorithms.
	Thompson = core.Thompson
	// Slab is the struct-of-arrays arena holding many agents' learned
	// state contiguously, with StepBatch/RewardBatch kernels.
	Slab = core.Slab
)

// Constructors, re-exported.
var (
	// New builds an Agent, validating the Config.
	New = core.New
	// MustNew is New that panics on error.
	MustNew = core.MustNew
	// NewSlab builds a fixed-capacity struct-of-arrays agent arena.
	NewSlab = core.NewSlab
	// MustNewSlab is NewSlab that panics on error.
	MustNewSlab = core.MustNewSlab
	// NewEpsilonGreedy returns an ε-Greedy policy.
	NewEpsilonGreedy = core.NewEpsilonGreedy
	// NewUCB returns a UCB policy with exploration constant c.
	NewUCB = core.NewUCB
	// NewDUCB returns a DUCB policy with exploration constant c and
	// forgetting factor gamma.
	NewDUCB = core.NewDUCB
	// NewStatic returns a policy pinned to one arm.
	NewStatic = core.NewStatic
	// NewSingle returns the Single heuristic.
	NewSingle = core.NewSingle
	// NewPeriodic returns the Periodic heuristic.
	NewPeriodic = core.NewPeriodic
	// NewMetaAgent builds a hierarchical agent over low-level agents.
	NewMetaAgent = core.NewMetaAgent
	// MustNewMetaAgent is NewMetaAgent that panics on error.
	MustNewMetaAgent = core.MustNewMetaAgent
	// NewDUCBSweepMeta builds the §9 hyperparameter-sweep configuration.
	NewDUCBSweepMeta = core.NewDUCBSweepMeta
	// NewCoordinator builds an exploration coordinator.
	NewCoordinator = core.NewCoordinator
	// NewThompson returns a Thompson-sampling policy.
	NewThompson = core.NewThompson
	// NewDiscountedThompson adds DUCB-style count discounting to it.
	NewDiscountedThompson = core.NewDiscountedThompson
)

// Paper hyperparameters (Table 6), re-exported for convenience.
const (
	// PrefetchGamma is the DUCB forgetting factor for data prefetching.
	PrefetchGamma = core.PrefetchGamma
	// PrefetchC is the DUCB exploration constant for data prefetching.
	PrefetchC = core.PrefetchC
	// PrefetchArms is the prefetching arm count (Table 7).
	PrefetchArms = core.PrefetchArms
	// SMTGamma is the DUCB forgetting factor for SMT fetch PG selection.
	SMTGamma = core.SMTGamma
	// SMTC is the DUCB exploration constant for SMT fetch PG selection.
	SMTC = core.SMTC
	// SMTArms is the pruned SMT arm count (Table 1).
	SMTArms = core.SMTArms
	// RRRestartProb4Core is the §4.3 restart probability for 4-core runs.
	RRRestartProb4Core = core.RRRestartProb4Core
)

// NewPrefetchAgent returns the paper's prefetching Bandit: DUCB over the
// 11 Table 7 arms with the Table 6 hyperparameters and normalization.
func NewPrefetchAgent(seed uint64) *Agent {
	return MustNew(Config{
		Arms:      PrefetchArms,
		Policy:    NewDUCB(PrefetchC, PrefetchGamma),
		Normalize: true,
		Seed:      seed,
	})
}

// NewSMTAgent returns the paper's SMT fetch PG Bandit: DUCB over the 6
// Table 1 arms with the Table 6 hyperparameters and normalization.
func NewSMTAgent(seed uint64) *Agent {
	return MustNew(Config{
		Arms:      SMTArms,
		Policy:    NewDUCB(SMTC, SMTGamma),
		Normalize: true,
		Seed:      seed,
	})
}
